package program

import (
	"fmt"
	"math"

	"reactivespec/internal/behavior"
	"reactivespec/internal/values"
)

// SynthOptions parameterize Synthesize. The zero value is not useful; start
// from DefaultSynthOptions.
type SynthOptions struct {
	Seed uint64
	// Regions is the number of regions (functions / loop bodies).
	Regions int
	// DiamondsPerRegion is the number of if/else diamonds in a region's
	// loop body.
	DiamondsPerRegion int
	// MeanTrip is the mean loop trip count per region invocation.
	MeanTrip int
	// BiasedFrac is the fraction of diamond branches that are highly
	// biased (speculation candidates).
	BiasedFrac float64
	// ChangerFrac is the fraction of biased branches whose behavior
	// changes mid-run (the open-loop hazard).
	ChangerFrac float64
	// RunInstrs is the intended run length; change points are placed
	// relative to each branch's expected execution count in such a run.
	RunInstrs uint64
	// MemFootprint is the total data working set in bytes; larger
	// footprints push more accesses to the L2 and memory.
	MemFootprint uint64
	// StreamFrac is the fraction of regions whose accesses stream through
	// the footprint with poor locality (e.g. mcf-like pointer chasing).
	StreamFrac float64
}

// DefaultSynthOptions returns a mid-sized SPECint-flavored program
// configuration.
func DefaultSynthOptions() SynthOptions {
	return SynthOptions{
		Regions:           24,
		DiamondsPerRegion: 4,
		MeanTrip:          48,
		BiasedFrac:        0.5,
		ChangerFrac:       0.06,
		RunInstrs:         10_000_000,
		MemFootprint:      8 << 20,
		StreamFrac:        0.15,
	}
}

// Synthesize builds a deterministic synthetic program.
//
// Each region is: entry block → loop header (conditional back-edge) → a body
// chain of if/else diamonds (the interesting speculation candidates) → back
// to the header, plus an occasional indirect switch, and a return block.
// Region weights are Zipf-distributed so a handful of regions are hot, as in
// the SPECint programs the paper studies.
func Synthesize(name string, o SynthOptions) (*Program, error) {
	if o.Regions < 1 || o.DiamondsPerRegion < 1 || o.MeanTrip < 2 {
		return nil, fmt.Errorf("program: invalid options %+v", o)
	}
	r := rng{s: o.Seed ^ hashString(name)}
	p := &Program{Name: name, Seed: o.Seed ^ hashString(name) ^ 0x5eed}

	// Region invocation weights: zipf(0.9).
	weights := make([]float64, o.Regions)
	wsum := 0.0
	for i := range weights {
		weights[i] = 1 / pow(float64(i+1), 0.9)
		wsum += weights[i]
	}

	// Estimate instructions per invocation to translate RunInstrs into
	// expected per-branch execution counts (change-point placement).
	const blockInstrs = 9.0 // rough mean instructions per body block
	instrsPerInv := blockInstrs * float64(o.MeanTrip) * float64(2+o.DiamondsPerRegion)

	pcBase := uint64(0x1000)
	addrBase := uint64(0x10_0000)
	for ri := 0; ri < o.Regions; ri++ {
		share := weights[ri] / wsum
		estInvocations := float64(o.RunInstrs) / instrsPerInv * share
		trips := float64(o.MeanTrip) * (0.5 + r.float64())
		estBodyExecs := estInvocations * trips

		streaming := r.float64() < o.StreamFrac
		span := o.MemFootprint / uint64(o.Regions*4)
		if streaming {
			span = o.MemFootprint
		}
		if span < 256 {
			span = 256
		}

		reg := Region{
			Name:    fmt.Sprintf("%s_r%d", name, ri),
			Weight:  weights[ri],
			EntryPC: pcBase,
		}
		newBlock := func(ops, loads, stores int) int {
			stride := uint64(8)
			if streaming {
				stride = 64 + (r.next()%8)*32
			}
			reg.Blocks = append(reg.Blocks, Block{
				Ops: ops, Loads: loads, Stores: stores,
				Branch: -1, TakenNext: -1, FallNext: -1, ValueLoad: -1,
				PC:       pcBase + uint64(len(reg.Blocks))*64,
				AddrBase: addrBase + uint64(len(reg.Blocks))*4096,
				AddrSpan: span,
				Stride:   stride,
			})
			return len(reg.Blocks) - 1
		}
		addCondBranch := func(blk int, m behavior.Model, class string, dead bool) {
			b := &reg.Blocks[blk]
			b.Kind = KindCond
			b.Branch = len(p.Branches)
			if dead {
				// Unchecked speculation removes the branch, the
				// compare chain feeding it, and the code made dead
				// by assuming one direction (Figure 1).
				b.DeadOps = b.Ops * 2 / 3
				if b.Loads > 0 {
					b.DeadLoads = 1
				}
			}
			p.Branches = append(p.Branches, Branch{
				Model: m, PC: b.PC, Region: ri, Class: class,
			})
		}

		// Layout: 0 entry, 1 header, body..., merge-back, exit.
		entry := newBlock(4+int(r.next()%4), 1, 0)
		header := newBlock(2, 1, 0)
		exit := newBlock(2, 0, 1)
		reg.Blocks[exit].Kind = KindReturn
		reg.Blocks[entry].FallNext = header

		// Loop back-edge branch: taken = continue looping.
		pCont := 1 - 1/trips
		addCondBranch(header, behavior.Bernoulli{Seed: r.next(), PTaken: pCont}, "loop", false)

		prev := header
		connect := func(from, to int, taken bool) {
			if taken {
				reg.Blocks[from].TakenNext = to
			} else {
				reg.Blocks[from].FallNext = to
			}
		}
		for d := 0; d < o.DiamondsPerRegion; d++ {
			cond := newBlock(3+int(r.next()%5), 1+int(r.next()%2), 0)
			thenB := newBlock(2+int(r.next()%6), int(r.next()%2), int(r.next()%2))
			elseB := newBlock(2+int(r.next()%6), int(r.next()%2), 0)
			merge := newBlock(2+int(r.next()%3), 0, int(r.next()%2))
			if prev == header {
				connect(header, cond, true)
			} else {
				connect(prev, cond, false)
			}
			m, class := diamondModel(&r, o, estBodyExecs)
			addCondBranch(cond, m, class, true)
			connect(cond, thenB, true)
			connect(cond, elseB, false)
			connect(thenB, merge, false)
			connect(elseB, merge, false)
			// Roughly every other diamond's then-block carries a
			// value-speculation candidate load (the Figure 1
			// x.d == 32 pattern).
			if d%2 == 0 {
				tb := &reg.Blocks[thenB]
				if tb.Loads == 0 {
					tb.Loads = 1
				}
				tb.ValueLoad = len(p.ValueLoads)
				tb.FoldOps = tb.Ops / 2
				tb.FoldLoads = 1
				p.ValueLoads = append(p.ValueLoads, ValueLoad{
					Model:  valueModel(&r, estBodyExecs),
					Region: ri,
					Class:  "",
				})
				vl := &p.ValueLoads[len(p.ValueLoads)-1]
				vl.Class = valueClassOf(vl.Model)
			}
			prev = merge
		}
		// Occasional indirect switch at the end of the body.
		if ri%4 == 1 {
			sw := newBlock(2, 1, 0)
			t1 := newBlock(3, 0, 0)
			t2 := newBlock(3, 0, 0)
			t3 := newBlock(3, 0, 0)
			connect(prev, sw, false)
			reg.Blocks[sw].Kind = KindIndirect
			reg.Blocks[sw].Targets = []int{t1, t2, t3}
			back := newBlock(1, 0, 0)
			for _, t := range []int{t1, t2, t3} {
				connect(t, back, false)
			}
			reg.Blocks[back].FallNext = header
		} else {
			connect(prev, header, false)
		}
		// Loop exit path.
		reg.Blocks[header].FallNext = exit

		p.Regions = append(p.Regions, reg)
		pcBase += uint64(len(reg.Blocks))*64 + 0x1000
		addrBase += span + 64<<10
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// diamondModel picks a diamond branch's behavior model per the options' mix.
func diamondModel(r *rng, o SynthOptions, estExecs float64) (behavior.Model, string) {
	dir := r.next()&1 == 0
	u := r.float64()
	if u < o.BiasedFrac {
		if r.float64() < o.ChangerFrac {
			// A changer: biased for the first 20–45% of its
			// expected executions, then reversed or softened.
			at := uint64((0.2 + 0.25*r.float64()) * estExecs)
			if at < 2_000 {
				at = 2_000
			}
			post := 0.5 // softened
			if r.float64() < 0.4 {
				post = 1e-4 // fully reversed
			}
			p1, p2 := 1-1e-4, post
			if !dir {
				p1, p2 = 1e-4, 1-post
			}
			return behavior.Segments{Seed: r.next(), Segs: []behavior.Segment{
				{Len: at, PTaken: p1},
				{PTaken: p2},
			}}, "changer"
		}
		res := 1e-4 * (0.5 + 4*r.float64())
		p := 1 - res
		if !dir {
			p = res
		}
		return behavior.Bernoulli{Seed: r.next(), PTaken: p}, "biased"
	}
	p := 0.5 + 0.4*r.float64()
	if !dir {
		p = 1 - p
	}
	return behavior.Bernoulli{Seed: r.next(), PTaken: p}, "unbiased"
}

// valueModel picks a value-load behavior: mostly invariant, sometimes
// phase-switching, sometimes never-repeating.
func valueModel(r *rng, estExecs float64) values.Model {
	u := r.float64()
	switch {
	case u < 0.60:
		return values.MostlyConstant{Seed: r.next(), Dominant: uint32(r.next()), P: 1 - 1e-4*(0.5+2*r.float64())}
	case u < 0.80:
		at := uint64((0.25 + 0.4*r.float64()) * estExecs)
		if at < 2_000 {
			at = 2_000
		}
		return values.PhaseConstant{V1: uint32(r.next()), V2: uint32(r.next()), SwitchAt: at}
	default:
		return values.Stride{Base: uint32(r.next()), Step: uint32(1 + r.next()%8)}
	}
}

func valueClassOf(m values.Model) string {
	switch m.(type) {
	case values.MostlyConstant:
		return "invariant"
	case values.PhaseConstant:
		return "phase"
	default:
		return "varying"
	}
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
