package tlspec

import (
	"testing"

	"reactivespec/internal/behavior"
	"reactivespec/internal/core"
)

func testParams() core.Params {
	p := core.DefaultParams().Scaled(50)
	p.WaitPeriod = 2_000
	return p
}

func TestIndependentLoopParallelizes(t *testing.T) {
	s := &Suite{Loops: []Loop{{
		Name: "indep", BodyInstrs: 50, Invocations: 40, TripsPerInvocation: 64,
		Pairs: []Pair{{Model: behavior.Fixed(true)}},
	}}}
	res := Run(s, core.New(testParams()), DefaultConfig())
	if res.ParallelIters == 0 {
		t.Fatal("independent loop never parallelized")
	}
	if res.Speedup() <= 1.5 {
		t.Fatalf("speedup = %v, want well above 1 on 4 cores", res.Speedup())
	}
	if res.Violations != 0 {
		t.Fatalf("violations = %d on a conflict-free loop", res.Violations)
	}
}

func TestDependentLoopStaysSerial(t *testing.T) {
	s := &Suite{Loops: []Loop{{
		Name: "dep", BodyInstrs: 50, Invocations: 40, TripsPerInvocation: 64,
		Pairs: []Pair{{Model: behavior.Bernoulli{Seed: 1, PTaken: 0.5}}},
	}}}
	res := Run(s, core.New(testParams()), DefaultConfig())
	if res.ParallelIters != 0 {
		t.Fatalf("conflicting loop parallelized %d iterations", res.ParallelIters)
	}
	if res.Speedup() != 1.0 {
		t.Fatalf("serial speedup = %v, want exactly 1", res.Speedup())
	}
}

func TestOnsetLoopEvictedByReactiveControl(t *testing.T) {
	mk := func() *Suite {
		return &Suite{Loops: []Loop{{
			Name: "onset", BodyInstrs: 50, Invocations: 120, TripsPerInvocation: 64,
			Pairs: []Pair{{Model: behavior.Segments{Seed: 2, Segs: []behavior.Segment{
				{Len: 2_000, PTaken: 1 - 1e-4},
				{PTaken: 0.5},
			}}}},
		}}}
	}
	closed := Run(mk(), core.New(testParams()), DefaultConfig())
	open := Run(mk(), core.New(testParams().WithNoEviction()), DefaultConfig())
	if closed.Violations == 0 {
		t.Fatal("closed loop saw no violations at all (onset never speculated?)")
	}
	if open.Violations <= closed.Violations*3 {
		t.Fatalf("open-loop violations %d not far above closed %d", open.Violations, closed.Violations)
	}
	if open.Speedup() >= closed.Speedup() {
		t.Fatalf("open-loop speedup %v >= closed %v", open.Speedup(), closed.Speedup())
	}
	// The open loop must actually lose to serial execution here: squash
	// costs dominate once the dependence materializes.
	if open.Speedup() >= 1.0 {
		t.Fatalf("open-loop speedup %v, expected below serial", open.Speedup())
	}
}

func TestSynthSuiteShape(t *testing.T) {
	s := SynthSuite(0, 0.2)
	if len(s.Loops) != 12 {
		t.Fatalf("loops = %d", len(s.Loops))
	}
	classes := map[string]int{}
	for _, l := range s.Loops {
		if l.Iterations() == 0 {
			t.Fatalf("loop %s has no iterations", l.Name)
		}
		for _, p := range l.Pairs {
			classes[p.Class]++
		}
	}
	for _, c := range []string{"independent", "dependent", "onset"} {
		if classes[c] == 0 {
			t.Fatalf("class %q missing", c)
		}
	}
}

func TestSynthSuiteEndToEnd(t *testing.T) {
	s := SynthSuite(0, 0.25)
	closed := Run(s, core.New(testParams()), DefaultConfig())
	open := Run(SynthSuite(0, 0.25), core.New(testParams().WithNoEviction()), DefaultConfig())
	if closed.Speedup() <= 1.0 {
		t.Fatalf("closed-loop TLS speedup = %v", closed.Speedup())
	}
	if open.Speedup() >= closed.Speedup() {
		t.Fatalf("open %v >= closed %v", open.Speedup(), closed.Speedup())
	}
	st := closed.ControllerStats
	if st.Correct+st.Misspec+st.NotSpec != st.Events {
		t.Fatalf("controller partition broken: %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		return Run(SynthSuite(3, 0.1), core.New(testParams()), DefaultConfig())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestZeroCoreClamp(t *testing.T) {
	s := &Suite{Loops: []Loop{{Name: "x", BodyInstrs: 10, Invocations: 1, TripsPerInvocation: 4,
		Pairs: []Pair{{Model: behavior.Fixed(true)}}}}}
	res := Run(s, core.New(testParams()), Config{Cores: 0, SquashPenalty: 10})
	if res.EffectiveInstrs <= 0 {
		t.Fatal("zero-core config should clamp to one core")
	}
}
