// Package tlspec implements a thread-level-speculation consumer — the third
// aggressive-software-speculation context the paper names (its reference
// [18], compiler-driven TLS). A loop is speculatively parallelized on the
// assumption that its cross-iteration memory dependences never materialize;
// a materialized dependence squashes the violating epoch at a cost far above
// the per-iteration benefit.
//
// The speculation decision here is per static dependence pair ("this
// store→load pair never conflicts across iterations"), which is a binary
// repeated behavior — so the paper's reactive controller applies unchanged:
// the loop runs parallel only while every one of its pairs is live-speculated
// conflict-free, and pairs that begin conflicting (a data structure growing
// into aliasing) are evicted, returning the loop to serial execution instead
// of letting it squash forever.
package tlspec

import (
	"fmt"

	"reactivespec/internal/behavior"
	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// Pair is one static cross-iteration dependence pair of a loop. Its model
// yields true when the pair does NOT conflict in a given iteration.
type Pair struct {
	Model behavior.Model
	// Class labels the population slice for reports.
	Class string
}

// Loop is one speculatively-parallelizable loop.
type Loop struct {
	Name string
	// BodyInstrs is the instruction count of one iteration.
	BodyInstrs int
	// Invocations and TripsPerInvocation size the loop's execution.
	Invocations        int
	TripsPerInvocation int
	// Pairs are the loop's cross-iteration dependence pairs.
	Pairs []Pair
}

// Iterations returns the loop's total dynamic iteration count.
func (l *Loop) Iterations() uint64 {
	return uint64(l.Invocations) * uint64(l.TripsPerInvocation)
}

// Suite is a workload of loops.
type Suite struct {
	Name  string
	Loops []Loop
}

// Config parameterizes the TLS machine.
type Config struct {
	// Cores is the number of speculative worker cores.
	Cores int
	// SquashPenalty is the recovery cost of one violated epoch, in
	// instruction-equivalents, on top of re-executing the iteration.
	SquashPenalty float64
}

// DefaultConfig returns a 4-core TLS machine.
func DefaultConfig() Config {
	return Config{Cores: 4, SquashPenalty: 300}
}

// Result summarizes one run.
type Result struct {
	// SerialInstrs is the all-serial cost; EffectiveInstrs the cost under
	// the speculation policy.
	SerialInstrs, EffectiveInstrs float64
	// ParallelIters and SerialIters partition the iterations.
	ParallelIters, SerialIters uint64
	// Violations counts squashed epochs.
	Violations uint64
	// ControllerStats exposes the dependence controller's counters.
	ControllerStats core.Stats
}

// Speedup returns serial cost over effective cost.
func (r Result) Speedup() float64 {
	if r.EffectiveInstrs == 0 {
		return 0
	}
	return r.SerialInstrs / r.EffectiveInstrs
}

// Run executes the suite under the given dependence controller.
//
// Iterations are processed invocation by invocation. An invocation runs
// parallel when every pair of the loop is live-speculated conflict-free: its
// iterations cost BodyInstrs/Cores each, except that an iteration whose pair
// conflicts is squashed (full re-execution plus the penalty). Otherwise the
// invocation runs serial at full cost. The controller observes every pair
// outcome either way (TLS profiles dependences from committed state).
func Run(s *Suite, ctl *core.Controller, cfg Config) Result {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	var res Result
	var instr uint64

	// Global pair IDs: loop i's pairs follow loop i-1's.
	base := make([]int, len(s.Loops))
	next := 0
	for i := range s.Loops {
		base[i] = next
		next += len(s.Loops[i].Pairs)
	}
	execIdx := make([]uint64, next)

	for li := range s.Loops {
		loop := &s.Loops[li]
		body := float64(loop.BodyInstrs)
		for inv := 0; inv < loop.Invocations; inv++ {
			// The loop is parallelized for this invocation only if
			// every pair is currently live-speculated.
			parallel := len(loop.Pairs) > 0
			for pi := range loop.Pairs {
				if _, live := ctl.Speculating(trace.BranchID(base[li] + pi)); !live {
					parallel = false
					break
				}
			}
			for it := 0; it < loop.TripsPerInvocation; it++ {
				instr += uint64(loop.BodyInstrs)
				violated := false
				for pi := range loop.Pairs {
					id := base[li] + pi
					n := execIdx[id]
					execIdx[id] = n + 1
					noConflict := loop.Pairs[pi].Model.Outcome(n)
					v := ctl.OnBranch(trace.BranchID(id), noConflict, instr)
					if parallel && v == core.Misspec {
						violated = true
					}
				}
				ctl.AddInstrs(uint64(loop.BodyInstrs))
				res.SerialInstrs += body
				if parallel {
					res.ParallelIters++
					res.EffectiveInstrs += body / float64(cfg.Cores)
					if violated {
						res.Violations++
						res.EffectiveInstrs += body + cfg.SquashPenalty
					}
				} else {
					res.SerialIters++
					res.EffectiveInstrs += body
				}
			}
		}
	}
	res.ControllerStats = ctl.Stats()
	return res
}

// SynthSuite builds a deterministic loop workload: loops whose dependences
// never conflict (profitable), loops that conflict often (must stay serial),
// and loops whose dependences begin conflicting mid-run (the open-loop
// hazard).
func SynthSuite(seed uint64, scale float64) *Suite {
	if scale <= 0 {
		scale = 1
	}
	rnd := seed ^ 0x715c
	nextRand := func() uint64 {
		rnd += 0x9e3779b97f4a7c15
		z := rnd
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	invocations := func(n int) int {
		v := int(float64(n) * scale)
		if v < 4 {
			v = 4
		}
		return v
	}
	s := &Suite{Name: "tls-suite"}
	// Independent loops: always parallelizable.
	for i := 0; i < 6; i++ {
		s.Loops = append(s.Loops, Loop{
			Name: fmt.Sprintf("indep%d", i), BodyInstrs: 40 + int(nextRand()%40),
			Invocations: invocations(220), TripsPerInvocation: 64,
			Pairs: []Pair{
				{Model: behavior.Bernoulli{Seed: nextRand(), PTaken: 1 - 2e-4}, Class: "independent"},
				{Model: behavior.Bernoulli{Seed: nextRand(), PTaken: 1 - 2e-4}, Class: "independent"},
			},
		})
	}
	// Dependent loops: conflict constantly; must never be parallelized.
	for i := 0; i < 3; i++ {
		s.Loops = append(s.Loops, Loop{
			Name: fmt.Sprintf("dep%d", i), BodyInstrs: 50,
			Invocations: invocations(120), TripsPerInvocation: 64,
			Pairs: []Pair{
				{Model: behavior.Bernoulli{Seed: nextRand(), PTaken: 0.4 + 0.3*float64(nextRand()%100)/100}, Class: "dependent"},
			},
		})
	}
	// Aliasing-onset loops: conflict-free until the data structure grows.
	for i := 0; i < 3; i++ {
		total := uint64(invocations(160)) * 64
		at := total/3 + uint64(nextRand()%(total/3))
		s.Loops = append(s.Loops, Loop{
			Name: fmt.Sprintf("onset%d", i), BodyInstrs: 45,
			Invocations: invocations(160), TripsPerInvocation: 64,
			Pairs: []Pair{
				{Model: behavior.Segments{Seed: nextRand(), Segs: []behavior.Segment{
					{Len: at, PTaken: 1 - 2e-4},
					{PTaken: 0.5},
				}}, Class: "onset"},
			},
		})
	}
	return s
}
