// Package replay implements a rePLay-style frame engine — the second
// aggressive-software-speculation consumer the paper names (its reference
// [4]). rePLay builds long, single-entry, single-exit optimization frames by
// converting biased branches into assertions; a failed assertion aborts the
// whole frame, costing far more than the per-branch benefit, which is
// exactly the low-misspeculation-rate regime the reactive controller exists
// to guarantee.
//
// The engine here consumes the same synthetic program IR as the MSSP
// simulation. Frames are built over hot regions by following the expected
// path and asserting every branch the speculation controller currently
// classifies as biased; branches the controller rejects terminate the frame
// instead. The cost model is instruction-count based: a completed frame
// executes fewer instructions than the original path (cross-block
// optimization), an aborted frame wastes its speculative work and pays a
// recovery penalty.
package replay

import (
	"math"

	"reactivespec/internal/core"
	"reactivespec/internal/program"
	"reactivespec/internal/trace"
)

// Config parameterizes the frame engine.
type Config struct {
	// MaxFrameBlocks caps frame length in dynamic blocks (rePLay frames
	// average ~100 instructions; ~12 blocks of our IR).
	MaxFrameBlocks int
	// OptGain is the fraction of instructions the frame optimizer removes
	// from a completed frame (cross-block dead-code removal, as enabled
	// by assertions).
	OptGain float64
	// AbortPenalty is the recovery cost of a failed assertion, in
	// instruction-equivalents (pipeline flush + recovery sequencing).
	AbortPenalty float64
	// HotThreshold is the region-invocation count before frames are
	// constructed for it.
	HotThreshold uint64
	// RunInstrs is the run length in original dynamic instructions.
	RunInstrs uint64
}

// DefaultConfig returns a rePLay-flavored configuration.
func DefaultConfig() Config {
	return Config{
		MaxFrameBlocks: 12,
		OptGain:        0.25,
		AbortPenalty:   220,
		HotThreshold:   4,
		RunInstrs:      8_000_000,
	}
}

// Result summarizes one run.
type Result struct {
	// OriginalInstrs is the run length.
	OriginalInstrs uint64
	// FrameInstrs counts instructions executed inside completed frames
	// (after optimization); OutsideInstrs everything else.
	FrameInstrs, OutsideInstrs float64
	// Frames and Aborts count frame executions and assertion failures.
	Frames, Aborts uint64
	// AbortedWork is the speculative work discarded by aborts, and
	// PenaltyInstrs the recovery costs, in instruction-equivalents.
	AbortedWork, PenaltyInstrs float64
	// ControllerStats exposes the speculation controller's counters.
	ControllerStats core.Stats
}

// EffectiveInstrs is the run's total instruction-equivalent cost.
func (r Result) EffectiveInstrs() float64 {
	return r.FrameInstrs + r.OutsideInstrs + r.AbortedWork + r.PenaltyInstrs
}

// Speedup returns original instructions over effective instructions — the
// instruction-level benefit of framing (a cost-model figure, not a cycle
// simulation).
func (r Result) Speedup() float64 {
	eff := r.EffectiveInstrs()
	if eff == 0 {
		return 0
	}
	return float64(r.OriginalInstrs) / eff
}

// AbortRate returns aborts per frame execution.
func (r Result) AbortRate() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(r.Frames)
}

// Run drives the program through the frame engine under the given
// speculation controller.
//
// The dynamic stream is consumed region-invocation-wise: once a region is
// hot, each invocation attempts a frame from its entry; the frame extends
// while the controller's live speculation agrees to assert the branches
// encountered, up to MaxFrameBlocks. A block whose branch is live-speculated
// in direction d asserts d; if the actual outcome differs the frame aborts
// there. Unspeculated branches end the frame (frame boundary), and execution
// continues unframed until the next invocation.
func Run(p *program.Program, ctl *core.Controller, cfg Config) Result {
	exec := program.NewExecutor(p)
	var res Result
	hot := make([]uint64, len(p.Regions))

	var (
		inFrame    bool
		frameLen   float64 // original instructions covered by the frame
		frameSaved float64 // instructions the optimizer removed
		frameBlks  int
	)
	endFrame := func(completed bool) {
		if !inFrame {
			return
		}
		res.Frames++
		if completed {
			res.FrameInstrs += frameLen - frameSaved
		} else {
			res.Aborts++
			// The frame's work is discarded and re-executed
			// unframed, plus the recovery penalty.
			res.AbortedWork += frameLen - frameSaved
			res.OutsideInstrs += frameLen
			res.PenaltyInstrs += cfg.AbortPenalty
		}
		inFrame = false
		frameLen, frameSaved, frameBlks = 0, 0, 0
	}

	var origInstrs uint64
	for origInstrs < cfg.RunInstrs {
		st := exec.Next()
		blk := &p.Regions[st.Region].Blocks[st.Block]
		instrs := float64(blk.Instrs())
		origInstrs += uint64(blk.Instrs())

		if st.RegionEntry {
			endFrame(true)
			hot[st.Region]++
		}
		// Frames chain: in a hot region, a new frame begins wherever the
		// previous one ended (rePLay stitches frames from committed
		// traces back to back; unassertable branches become frame
		// boundaries rather than dead zones).
		if !inFrame && hot[st.Region] >= cfg.HotThreshold {
			inFrame = true
		}

		// The controller observes every branch outcome regardless of
		// framing (rePLay profiles from committed state).
		var specDir, specLive bool
		if st.Branch >= 0 {
			specDir, specLive = ctl.Speculating(trace.BranchID(st.Branch))
			ctl.OnBranch(trace.BranchID(st.Branch), st.Taken, origInstrs)
		}
		ctl.AddInstrs(uint64(blk.Instrs()))

		if !inFrame {
			res.OutsideInstrs += instrs
			continue
		}
		frameLen += instrs
		frameBlks++
		if st.Branch >= 0 {
			if !specLive {
				// Unasserted branch: frame boundary.
				endFrame(true)
				continue
			}
			// Asserted branch: the assertion replaces the branch
			// and enables cross-block optimization.
			frameSaved += math.Min(instrs-1, 1+cfg.OptGain*instrs)
			if st.Taken != specDir {
				endFrame(false)
				continue
			}
		}
		if frameBlks >= cfg.MaxFrameBlocks {
			endFrame(true)
		}
	}
	endFrame(true)
	res.OriginalInstrs = origInstrs
	res.ControllerStats = ctl.Stats()
	return res
}
