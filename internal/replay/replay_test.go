package replay

import (
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/program"
)

func testParams() core.Params {
	p := core.DefaultParams().Scaled(50)
	p.WaitPeriod = 5_000
	return p
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RunInstrs = 1_500_000
	return cfg
}

func synth(t *testing.T, changerFrac float64) *program.Program {
	t.Helper()
	o := program.DefaultSynthOptions()
	o.Regions = 8
	o.MeanTrip = 16
	o.RunInstrs = 1_500_000
	o.BiasedFrac = 0.6
	o.ChangerFrac = changerFrac
	p, err := program.Synthesize("replay-test", o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFramesForm(t *testing.T) {
	res := Run(synth(t, 0.05), core.New(testParams()), testConfig())
	if res.Frames == 0 {
		t.Fatal("no frames executed")
	}
	if res.FrameInstrs <= 0 {
		t.Fatal("no framed instructions")
	}
	if res.OriginalInstrs < testConfig().RunInstrs {
		t.Fatalf("OriginalInstrs = %d", res.OriginalInstrs)
	}
}

func TestFramingSpeedsUpStablePrograms(t *testing.T) {
	res := Run(synth(t, 0.02), core.New(testParams()), testConfig())
	if res.Speedup() <= 1.0 {
		t.Fatalf("speedup = %v, want > 1 on a stable program", res.Speedup())
	}
	if res.AbortRate() > 0.02 {
		t.Fatalf("abort rate = %v under reactive control", res.AbortRate())
	}
}

func TestOpenLoopAbortsMore(t *testing.T) {
	prog := synth(t, 0.4)
	closed := Run(prog, core.New(testParams()), testConfig())
	open := Run(prog, core.New(testParams().WithNoEviction()), testConfig())
	if open.Aborts <= closed.Aborts {
		t.Fatalf("open-loop aborts %d <= closed %d", open.Aborts, closed.Aborts)
	}
	if open.Speedup() >= closed.Speedup() {
		t.Fatalf("open-loop speedup %v >= closed %v", open.Speedup(), closed.Speedup())
	}
}

func TestAbortAccounting(t *testing.T) {
	res := Run(synth(t, 0.4), core.New(testParams().WithNoEviction()), testConfig())
	if res.Aborts == 0 {
		t.Fatal("expected aborts on a changer-heavy open-loop run")
	}
	if res.AbortedWork <= 0 || res.PenaltyInstrs <= 0 {
		t.Fatalf("abort costs not accounted: %+v", res)
	}
	// Effective cost must exceed the completed work alone.
	if res.EffectiveInstrs() <= res.FrameInstrs+res.OutsideInstrs {
		t.Fatal("aborts added no cost")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		return Run(synth(t, 0.1), core.New(testParams()), testConfig())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestZeroResultSafe(t *testing.T) {
	var r Result
	if r.Speedup() != 0 || r.AbortRate() != 0 {
		t.Fatal("zero result derived values should be 0")
	}
}
