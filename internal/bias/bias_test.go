package bias

import (
	"math"
	"testing"
	"testing/quick"

	"reactivespec/internal/trace"
)

func observe(p *Profile, id trace.BranchID, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Observe(trace.Event{Branch: id, Taken: taken, Gap: 5})
	}
}

func TestCountMajority(t *testing.T) {
	c := Count{Execs: 10, Taken: 7}
	dir, n := c.Majority()
	if !dir || n != 7 {
		t.Fatalf("Majority = (%v, %d), want (true, 7)", dir, n)
	}
	c = Count{Execs: 10, Taken: 3}
	dir, n = c.Majority()
	if dir || n != 7 {
		t.Fatalf("Majority = (%v, %d), want (false, 7)", dir, n)
	}
}

func TestCountBias(t *testing.T) {
	if b := (Count{Execs: 100, Taken: 99}).Bias(); b != 0.99 {
		t.Fatalf("Bias = %v, want 0.99", b)
	}
	if b := (Count{}).Bias(); b != 0 {
		t.Fatalf("empty Bias = %v, want 0", b)
	}
}

func TestProfileAccumulates(t *testing.T) {
	p := NewProfile()
	observe(p, 3, true, 8)
	observe(p, 3, false, 2)
	observe(p, 100, false, 1)
	c := p.Count(3)
	if c.Execs != 10 || c.Taken != 8 {
		t.Fatalf("Count(3) = %+v", c)
	}
	if p.Events() != 11 {
		t.Fatalf("Events = %d", p.Events())
	}
	if p.Instrs() != 55 {
		t.Fatalf("Instrs = %d", p.Instrs())
	}
	if p.Touched() != 2 {
		t.Fatalf("Touched = %d", p.Touched())
	}
	if got := p.Count(999); got.Execs != 0 {
		t.Fatalf("unseen branch Count = %+v", got)
	}
}

func TestProfileBranches(t *testing.T) {
	p := NewProfile()
	observe(p, 5, true, 1)
	observe(p, 2, true, 1)
	ids := p.Branches()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Fatalf("Branches = %v", ids)
	}
}

func TestSelectThreshold(t *testing.T) {
	p := NewProfile()
	observe(p, 0, true, 995)
	observe(p, 0, false, 5) // 99.5% biased
	observe(p, 1, true, 90)
	observe(p, 1, false, 10) // 90% biased
	observe(p, 2, false, 1000)

	sel := p.Select(0.99, 1)
	if sel.Len() != 2 {
		t.Fatalf("selected %d branches, want 2", sel.Len())
	}
	if dir, ok := sel.Direction(0); !ok || !dir {
		t.Fatal("branch 0 should be selected taken")
	}
	if dir, ok := sel.Direction(2); !ok || dir {
		t.Fatal("branch 2 should be selected not-taken")
	}
	if _, ok := sel.Direction(1); ok {
		t.Fatal("branch 1 should not be selected")
	}
}

func TestSelectMinExecs(t *testing.T) {
	p := NewProfile()
	observe(p, 0, true, 5)
	sel := p.Select(0.99, 10)
	if sel.Len() != 0 {
		t.Fatal("branch with 5 execs selected despite minExecs=10")
	}
}

func TestSelectionDecisionsSorted(t *testing.T) {
	p := NewProfile()
	observe(p, 9, true, 100)
	observe(p, 1, false, 100)
	ds := p.Select(0.99, 1).Decisions()
	if len(ds) != 2 || ds[0].Branch != 1 || ds[1].Branch != 9 {
		t.Fatalf("Decisions = %+v", ds)
	}
}

func TestParetoCumulative(t *testing.T) {
	p := NewProfile()
	observe(p, 0, true, 999)
	observe(p, 0, false, 1)
	observe(p, 1, true, 900)
	observe(p, 1, false, 100)
	observe(p, 2, true, 500)
	observe(p, 2, false, 500)

	points := p.Pareto()
	if len(points) != 3 {
		t.Fatalf("Pareto has %d points, want 3", len(points))
	}
	// Bias-descending order.
	if points[0].Bias < points[1].Bias || points[1].Bias < points[2].Bias {
		t.Fatalf("Pareto not sorted by bias: %+v", points)
	}
	// Monotone cumulative fractions.
	for i := 1; i < len(points); i++ {
		if points[i].CorrectF < points[i-1].CorrectF || points[i].WrongF < points[i-1].WrongF {
			t.Fatalf("Pareto not monotone at %d: %+v", i, points)
		}
	}
	last := points[2]
	total := 999.0 + 1 + 900 + 100 + 500 + 500
	if math.Abs(last.CorrectF-(999+900+500)/total) > 1e-12 {
		t.Fatalf("final CorrectF = %v", last.CorrectF)
	}
	if math.Abs(last.WrongF-(1+100+500)/total) > 1e-12 {
		t.Fatalf("final WrongF = %v", last.WrongF)
	}
}

func TestAtThresholdMatchesManualSum(t *testing.T) {
	p := NewProfile()
	observe(p, 0, true, 999)
	observe(p, 0, false, 1)
	observe(p, 1, true, 500)
	observe(p, 1, false, 500)
	pt := p.AtThreshold(0.99)
	if pt.NumStatic != 1 {
		t.Fatalf("NumStatic = %d", pt.NumStatic)
	}
	if math.Abs(pt.CorrectF-999.0/2000) > 1e-12 {
		t.Fatalf("CorrectF = %v", pt.CorrectF)
	}
}

func TestAtThresholdEmptyProfile(t *testing.T) {
	pt := NewProfile().AtThreshold(0.99)
	if pt.CorrectF != 0 || pt.WrongF != 0 {
		t.Fatalf("empty profile AtThreshold = %+v", pt)
	}
}

func TestParetoMonotoneProperty(t *testing.T) {
	// Property: for random profiles, the Pareto curve is monotone
	// non-decreasing in both axes and its last point accounts for every
	// execution.
	f := func(taken []uint16, extra []uint16) bool {
		p := NewProfile()
		var events uint64
		for i, tk := range taken {
			nT := uint64(tk % 200)
			nF := uint64(0)
			if i < len(extra) {
				nF = uint64(extra[i] % 200)
			}
			for j := uint64(0); j < nT; j++ {
				p.Observe(trace.Event{Branch: trace.BranchID(i), Taken: true, Gap: 1})
			}
			for j := uint64(0); j < nF; j++ {
				p.Observe(trace.Event{Branch: trace.BranchID(i), Taken: false, Gap: 1})
			}
			events += nT + nF
		}
		if events == 0 {
			return true
		}
		points := p.Pareto()
		prevC, prevW := 0.0, 0.0
		for _, pt := range points {
			if pt.CorrectF < prevC-1e-12 || pt.WrongF < prevW-1e-12 {
				return false
			}
			prevC, prevW = pt.CorrectF, pt.WrongF
		}
		return math.Abs(prevC+prevW-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSumsCounts(t *testing.T) {
	a := NewProfile()
	observe(a, 0, true, 10)
	observe(a, 1, false, 5)
	b := NewProfile()
	observe(b, 0, false, 3)
	observe(b, 2, true, 7)

	m := Merge(a, b)
	if c := m.Count(0); c.Execs != 13 || c.Taken != 10 {
		t.Fatalf("merged Count(0) = %+v", c)
	}
	if c := m.Count(1); c.Execs != 5 || c.Taken != 0 {
		t.Fatalf("merged Count(1) = %+v", c)
	}
	if c := m.Count(2); c.Execs != 7 || c.Taken != 7 {
		t.Fatalf("merged Count(2) = %+v", c)
	}
	if m.Events() != a.Events()+b.Events() {
		t.Fatalf("merged Events = %d", m.Events())
	}
	if m.Instrs() != a.Instrs()+b.Instrs() {
		t.Fatalf("merged Instrs = %d", m.Instrs())
	}
}

func TestMergeMasksInputDependence(t *testing.T) {
	// A branch 100% taken in one input and 100% not-taken in another must
	// not look biased in the merged profile — the averaging mitigation.
	a := NewProfile()
	observe(a, 0, true, 100)
	b := NewProfile()
	observe(b, 0, false, 100)
	if sel := Merge(a, b).Select(0.99, 1); sel.Len() != 0 {
		t.Fatal("input-dependent branch selected from merged profile")
	}
}

func TestMergeEmpty(t *testing.T) {
	if m := Merge(); m.Events() != 0 || m.Touched() != 0 {
		t.Fatal("empty merge not empty")
	}
}
