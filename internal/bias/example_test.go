package bias_test

import (
	"fmt"

	"reactivespec/internal/bias"
	"reactivespec/internal/trace"
)

// Example computes a self-training selection from a profile — the oracle the
// paper's Figure 2 curve is built from.
func Example() {
	p := bias.NewProfile()
	feed := func(id trace.BranchID, taken bool, n int) {
		for i := 0; i < n; i++ {
			p.Observe(trace.Event{Branch: id, Taken: taken, Gap: 6})
		}
	}
	feed(0, true, 995)
	feed(0, false, 5) // 99.5% taken: selected
	feed(1, true, 60)
	feed(1, false, 40) // 60% taken: rejected

	sel := p.Select(0.99, 1)
	for _, d := range sel.Decisions() {
		fmt.Printf("speculate branch %d taken=%v\n", d.Branch, d.Taken)
	}
	knee := p.AtThreshold(0.99)
	fmt.Printf("coverage %.1f%%, misspeculation %.2f%%\n",
		100*knee.CorrectF, 100*knee.WrongF)
	// Output:
	// speculate branch 0 taken=true
	// coverage 90.5%, misspeculation 0.45%
}
