// Package bias computes branch-bias statistics: per-branch profiles, the
// Pareto-optimal correct/incorrect speculation trade-off of Figure 2, and
// threshold-based biased-set selection (the self-training oracle).
package bias

import (
	"sort"

	"reactivespec/internal/trace"
)

// Count holds one branch's dynamic execution profile.
type Count struct {
	Execs uint64
	Taken uint64
}

// NotTaken returns the number of not-taken executions.
func (c Count) NotTaken() uint64 { return c.Execs - c.Taken }

// Majority returns the majority direction and its execution count.
func (c Count) Majority() (taken bool, n uint64) {
	if c.Taken*2 >= c.Execs {
		return true, c.Taken
	}
	return false, c.NotTaken()
}

// Bias returns the fraction of executions in the majority direction
// (0.5–1.0), or 0 for a branch that never executed.
func (c Count) Bias() float64 {
	if c.Execs == 0 {
		return 0
	}
	_, n := c.Majority()
	return float64(n) / float64(c.Execs)
}

// Profile aggregates per-branch counts over a run.
type Profile struct {
	counts []Count
	events uint64
	instrs uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

// Observe records one dynamic branch event.
func (p *Profile) Observe(ev trace.Event) {
	id := int(ev.Branch)
	if id >= len(p.counts) {
		grown := make([]Count, id+1+id/2)
		copy(grown, p.counts)
		p.counts = grown
	}
	p.counts[id].Execs++
	if ev.Taken {
		p.counts[id].Taken++
	}
	p.events++
	p.instrs += uint64(ev.Gap)
}

// FromStream drains a stream into a new profile.
func FromStream(s trace.Stream) *Profile {
	p := NewProfile()
	for {
		ev, ok := s.Next()
		if !ok {
			return p
		}
		p.Observe(ev)
	}
}

// Count returns the profile of a branch (zero Count if never seen).
func (p *Profile) Count(id trace.BranchID) Count {
	if int(id) >= len(p.counts) {
		return Count{}
	}
	return p.counts[id]
}

// Events returns the total number of observed events.
func (p *Profile) Events() uint64 { return p.events }

// Instrs returns the total number of observed instructions.
func (p *Profile) Instrs() uint64 { return p.instrs }

// Touched returns the number of static branches with at least one execution.
func (p *Profile) Touched() int {
	n := 0
	for _, c := range p.counts {
		if c.Execs > 0 {
			n++
		}
	}
	return n
}

// Branches returns the IDs of all touched branches in ascending order.
func (p *Profile) Branches() []trace.BranchID {
	ids := make([]trace.BranchID, 0, len(p.counts))
	for i, c := range p.counts {
		if c.Execs > 0 {
			ids = append(ids, trace.BranchID(i))
		}
	}
	return ids
}

// Decision is a static speculation decision for one branch.
type Decision struct {
	Branch trace.BranchID
	// Taken is the assumed (speculated) direction.
	Taken bool
}

// Selection is a set of static speculation decisions, as produced by
// profile-guided selection. It is the input to the non-reactive baseline
// controllers.
type Selection struct {
	directions map[trace.BranchID]bool
}

// Select returns the branches whose bias meets or exceeds threshold
// (e.g. 0.99 for the paper's 99% threshold), each with its majority
// direction. Branches with fewer than minExecs executions are skipped.
func (p *Profile) Select(threshold float64, minExecs uint64) *Selection {
	sel := &Selection{directions: make(map[trace.BranchID]bool)}
	for i, c := range p.counts {
		if c.Execs < minExecs || c.Execs == 0 {
			continue
		}
		if c.Bias() >= threshold {
			dir, _ := c.Majority()
			sel.directions[trace.BranchID(i)] = dir
		}
	}
	return sel
}

// Len returns the number of selected branches.
func (s *Selection) Len() int { return len(s.directions) }

// Direction reports whether the branch is selected and, if so, the assumed
// direction.
func (s *Selection) Direction(id trace.BranchID) (taken, ok bool) {
	taken, ok = s.directions[id]
	return taken, ok
}

// Decisions returns the selection as a sorted slice.
func (s *Selection) Decisions() []Decision {
	ds := make([]Decision, 0, len(s.directions))
	for id, dir := range s.directions {
		ds = append(ds, Decision{Branch: id, Taken: dir})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Branch < ds[j].Branch })
	return ds
}

// Merge returns a profile holding the per-branch sums of the inputs. It
// implements the profile-averaging mitigation sketched (but not shown) in
// Section 2.2: selecting from a merged profile reduces misspeculation on
// input-dependent branches — which no longer look biased — at the cost of
// never speculating on them.
func Merge(profiles ...*Profile) *Profile {
	out := NewProfile()
	maxLen := 0
	for _, p := range profiles {
		if len(p.counts) > maxLen {
			maxLen = len(p.counts)
		}
		out.events += p.events
		out.instrs += p.instrs
	}
	out.counts = make([]Count, maxLen)
	for _, p := range profiles {
		for i, c := range p.counts {
			out.counts[i].Execs += c.Execs
			out.counts[i].Taken += c.Taken
		}
	}
	return out
}

// ParetoPoint is one point of the Figure 2 trade-off curve: the correct and
// incorrect speculation fractions (of all dynamic branches) achieved by
// speculating on every branch at least as biased as Bias.
type ParetoPoint struct {
	Bias      float64
	CorrectF  float64 // correct speculations / dynamic branches
	WrongF    float64 // misspeculations / dynamic branches
	NumStatic int     // static branches speculated on
}

// Pareto computes the Pareto-optimal correct/incorrect trade-off achieved
// with perfect knowledge of future outcomes (self-training): branches sorted
// by descending bias, cumulatively added to the speculated set. The returned
// points are in order of decreasing bias (increasing coverage).
func (p *Profile) Pareto() []ParetoPoint {
	type entry struct {
		bias    float64
		correct uint64
		wrong   uint64
	}
	entries := make([]entry, 0, len(p.counts))
	for _, c := range p.counts {
		if c.Execs == 0 {
			continue
		}
		_, maj := c.Majority()
		entries = append(entries, entry{bias: c.Bias(), correct: maj, wrong: c.Execs - maj})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].bias > entries[j].bias })
	points := make([]ParetoPoint, 0, len(entries))
	var correct, wrong uint64
	total := float64(p.events)
	for i, e := range entries {
		correct += e.correct
		wrong += e.wrong
		points = append(points, ParetoPoint{
			Bias:      e.bias,
			CorrectF:  float64(correct) / total,
			WrongF:    float64(wrong) / total,
			NumStatic: i + 1,
		})
	}
	return points
}

// AtThreshold returns the Pareto point achieved by speculating on all
// branches with bias ≥ threshold (the paper's marked 99% point).
func (p *Profile) AtThreshold(threshold float64) ParetoPoint {
	var correct, wrong uint64
	n := 0
	for _, c := range p.counts {
		if c.Execs == 0 || c.Bias() < threshold {
			continue
		}
		_, maj := c.Majority()
		correct += maj
		wrong += c.Execs - maj
		n++
	}
	total := float64(p.events)
	if total == 0 {
		return ParetoPoint{Bias: threshold}
	}
	return ParetoPoint{
		Bias:      threshold,
		CorrectF:  float64(correct) / total,
		WrongF:    float64(wrong) / total,
		NumStatic: n,
	}
}
