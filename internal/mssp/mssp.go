// Package mssp simulates a Master/Slave Speculative Parallelization machine
// (Section 4): an asymmetric chip multiprocessor with one wide leading core
// executing the distilled (unchecked-speculative) program and eight narrow
// trailing cores re-executing the original program at task granularity to
// verify it. Misspeculations are detected by the trailing execution hundreds
// of cycles after they occur and squash the leading core back to verified
// state — the large-penalty regime that motivates reactive speculation
// control.
package mssp

import (
	"math"

	"reactivespec/internal/cache"
	"reactivespec/internal/core"
	"reactivespec/internal/cpu"
	"reactivespec/internal/distill"
	"reactivespec/internal/program"
	"reactivespec/internal/trace"
	"reactivespec/internal/values"
)

// Config parameterizes the machine. DefaultConfig matches Table 5 and the
// paper's methodology notes.
type Config struct {
	// Slaves is the number of trailing cores (8).
	Slaves int
	// TaskBlocks is the target task length in dynamic blocks; tasks also
	// end at region boundaries.
	TaskBlocks int
	// MaxUnverified bounds the leading core's run-ahead (tasks dispatched
	// but not yet verified); the master stalls when it is reached.
	MaxUnverified int
	// DispatchCycles is the checkpoint-transfer latency from master to a
	// trailing core (a coherence hop).
	DispatchCycles float64
	// RestartCycles is the recovery overhead after a detected
	// misspeculation, on top of waiting for detection itself. Together
	// they yield the ~400-cycle true misspeculation cost the paper
	// measured in its simulated system.
	RestartCycles float64
	// OptLatencyCycles is the dynamic optimizer's (re-)optimization
	// latency (Figure 8 sweeps 0, 10^5 and 10^6).
	OptLatencyCycles uint64
	// RunInstrs is the run length in original dynamic instructions.
	RunInstrs uint64
	// MaxConsecutiveSquashes is the forward-progress watchdog bound: after
	// this many back-to-back squashed tasks, the machine falls back to
	// non-speculative execution for the same number of tasks before
	// re-enabling speculation, guaranteeing the master makes progress even
	// when the controller's decisions are pathologically wrong (hostile
	// predictor state, corrupted profiles). 0 disables the watchdog.
	MaxConsecutiveSquashes int
	// PrecomputedBaseline, when positive, is used as the superscalar
	// baseline cycle count instead of re-simulating it — the baseline
	// depends only on (program, RunInstrs), so callers comparing several
	// machine configurations can compute it once with Baseline.
	PrecomputedBaseline float64
}

// DefaultConfig returns the Table 5 machine.
func DefaultConfig() Config {
	return Config{
		Slaves:                 8,
		TaskBlocks:             24,
		MaxUnverified:          16,
		DispatchCycles:         cache.HopLatency,
		RestartCycles:          60,
		RunInstrs:              4_000_000,
		MaxConsecutiveSquashes: 32,
	}
}

// Result summarizes one simulation.
type Result struct {
	// MasterCycles is the MSSP execution time (master finish plus final
	// verification).
	MasterCycles float64
	// BaselineCycles is the same program run on the leading core alone
	// (the "vanilla superscalar" normalization baseline).
	BaselineCycles float64
	// Tasks and TaskMisspecs count dispatched tasks and squashed tasks.
	Tasks, TaskMisspecs uint64
	// SpecViolations counts individual violated speculations; because a
	// task squashes as a unit, several violations within one task fold
	// into a single task misspeculation (Section 4.3's observation that
	// the machine's misspeculation rate can be noticeably lower than the
	// abstract model predicts).
	SpecViolations uint64
	// OriginalInstrs and DistilledInstrs compare program sizes; their
	// ratio is the distillation benefit.
	OriginalInstrs, DistilledInstrs uint64
	// MasterStats and BaselineStats expose the cores' counters.
	MasterStats, BaselineStats cpu.Stats
	// Reopts and ChangesApplied are the distiller's re-optimization
	// statistics.
	Reopts, ChangesApplied uint64
	// WatchdogTrips counts forward-progress watchdog activations
	// (MaxConsecutiveSquashes consecutive squashed tasks), and
	// FallbackTasks the tasks executed non-speculatively as a result.
	WatchdogTrips, FallbackTasks uint64
	// ControllerStats exposes the branch speculation controller's
	// counters; ValueStats those of the value-speculation controller.
	ControllerStats core.Stats
	ValueStats      core.Stats
}

// Speedup returns baseline time over MSSP time.
func (r Result) Speedup() float64 {
	if r.MasterCycles == 0 {
		return 0
	}
	return r.BaselineCycles / r.MasterCycles
}

// policyAdapter exposes a core.Controller as a distill.Policy.
type policyAdapter struct{ ctl *core.Controller }

func (p policyAdapter) Speculation(branch int) (bool, bool) {
	return p.ctl.Speculating(trace.BranchID(branch))
}

// taskStep records one dynamic block of a task.
type taskStep struct {
	step program.Step
	blk  *program.Block
}

// Run simulates the program under the given speculation controller and
// returns both the MSSP time and the superscalar baseline time.
//
// The simulation is task-sequential: the master executes the distilled task,
// dispatches it to the least-loaded trailing core for verification, and — on
// a violated speculation — waits for the trailing core's detection, pays the
// restart penalty, and re-executes the task unspeculatively, exactly the
// squash-to-verified-state recovery the paper describes.
func Run(p *program.Program, ctl *core.Controller, cfg Config) Result {
	shared := cache.NewShared()
	master := cpu.New(cpu.Leading, 0, shared)
	slaves := make([]*slaveState, cfg.Slaves)
	for i := range slaves {
		slaves[i] = &slaveState{core: cpu.New(cpu.Trailing, 1+i, shared)}
	}
	dist := distill.New(p)
	if cfg.OptLatencyCycles > 0 {
		dist.BatchWindow = cfg.OptLatencyCycles
	}
	pol := policyAdapter{ctl}
	// The dynamic optimizer also value-speculates invariant loads
	// (Figure 1's constant-substitution approximation), driven by the
	// same control model.
	vctl := values.New(ctl.Params())
	ctl.OnTransition = func(tr core.Transition) {
		if tr.To == core.Biased || (tr.From == core.Biased && tr.To == core.Monitor) {
			dist.NoteTransition(int(tr.Branch), tr.Instr)
		}
	}

	exec := program.NewExecutor(p)
	var (
		res          Result
		masterCycle  float64
		origInstrs   uint64
		verifyQueue  []float64 // verification-completion times of in-flight tasks
		task         []taskStep
		lastVerified float64
		consecSquash int
		fallbackLeft int
	)

	flushTask := func() {
		if len(task) == 0 {
			return
		}
		res.Tasks++
		// Forward-progress watchdog: after MaxConsecutiveSquashes
		// back-to-back squashes, run tasks non-speculatively (original
		// code, no distillation) until the fallback window drains.
		if fallbackLeft > 0 {
			fallbackLeft--
			res.FallbackTasks++
			for _, ts := range task {
				masterCycle += master.ExecBlock(ts.blk, ts.step, cpu.BlockCost{})
			}
			task = task[:0]
			return
		}
		// Distill and execute on the master; detect violations.
		violated := false
		for _, ts := range task {
			cost, bad := dist.Distill(ts.blk, ts.step, pol, vctl)
			if bad {
				violated = true
				res.SpecViolations++
			}
			masterCycle += master.ExecBlock(ts.blk, ts.step, cost)
		}
		// Dispatch verification to the earliest-free trailing core.
		s := slaves[0]
		for _, cand := range slaves[1:] {
			if cand.freeAt < s.freeAt {
				s = cand
			}
		}
		start := math.Max(masterCycle+cfg.DispatchCycles, s.freeAt)
		var slaveCycles float64
		for _, ts := range task {
			slaveCycles += s.core.ExecBlock(ts.blk, ts.step, cpu.BlockCost{})
		}
		verifyDone := start + slaveCycles
		s.freeAt = verifyDone
		lastVerified = math.Max(lastVerified, verifyDone)

		if violated {
			res.TaskMisspecs++
			// The trailing execution detects the misspeculation at
			// verifyDone; the master squashes back to verified
			// state, pays the restart cost, and re-executes the
			// task without the offending speculative code.
			masterCycle = math.Max(masterCycle, verifyDone) + cfg.RestartCycles
			for _, ts := range task {
				masterCycle += master.ExecBlock(ts.blk, ts.step, cpu.BlockCost{})
			}
			consecSquash++
			if cfg.MaxConsecutiveSquashes > 0 && consecSquash >= cfg.MaxConsecutiveSquashes {
				res.WatchdogTrips++
				fallbackLeft = cfg.MaxConsecutiveSquashes
				consecSquash = 0
			}
		} else {
			consecSquash = 0
		}
		// Run-ahead bound: the master stalls once too many tasks are
		// unverified.
		verifyQueue = append(verifyQueue, verifyDone)
		if len(verifyQueue) > cfg.MaxUnverified {
			oldest := verifyQueue[0]
			verifyQueue = verifyQueue[1:]
			if oldest > masterCycle {
				masterCycle = oldest
			}
		}
		task = task[:0]
	}

	for origInstrs < cfg.RunInstrs {
		st := exec.Next()
		blk := &p.Regions[st.Region].Blocks[st.Block]
		if st.RegionEntry {
			flushTask()
			dist.OnRegionEntry(st.Region)
		}
		origInstrs += uint64(blk.Instrs())
		// The controller observes every branch outcome (the trailing
		// cores see the full original execution).
		if st.Branch >= 0 {
			ctl.OnBranch(trace.BranchID(st.Branch), st.Taken, origInstrs)
		}
		if st.ValueLoad >= 0 {
			vctl.OnLoad(st.ValueLoad, st.Value, origInstrs)
		}
		ctl.AddInstrs(uint64(blk.Instrs()))
		task = append(task, taskStep{step: st, blk: blk})
		if len(task) >= cfg.TaskBlocks {
			flushTask()
		}
	}
	flushTask()
	res.MasterCycles = math.Max(masterCycle, lastVerified)
	res.OriginalInstrs = origInstrs
	res.DistilledInstrs = master.Stats().Instrs
	res.MasterStats = master.Stats()
	res.Reopts = dist.Reopts
	res.ChangesApplied = dist.ChangesApplied
	res.ControllerStats = ctl.Stats()
	res.ValueStats = vctl.Stats()

	// Baseline: the same dynamic stream on the leading core alone.
	if cfg.PrecomputedBaseline > 0 {
		res.BaselineCycles = cfg.PrecomputedBaseline
	} else {
		res.BaselineCycles, res.BaselineStats = Baseline(p, cfg.RunInstrs)
	}
	return res
}

type slaveState struct {
	core   *cpu.Core
	freeAt float64
}

// Baseline runs the original program on a single leading core and returns
// its cycle count and statistics (the Figure 7/8 normalization baseline).
func Baseline(p *program.Program, runInstrs uint64) (float64, cpu.Stats) {
	shared := cache.NewShared()
	c := cpu.New(cpu.Leading, 0, shared)
	exec := program.NewExecutor(p)
	var cycles float64
	var instrs uint64
	for instrs < runInstrs {
		st := exec.Next()
		blk := &p.Regions[st.Region].Blocks[st.Block]
		instrs += uint64(blk.Instrs())
		cycles += c.ExecBlock(blk, st, cpu.BlockCost{})
	}
	return cycles, c.Stats()
}
