package mssp

import (
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/program"
)

// Test runs are very short (1.5 M instructions), so the controller and the
// program are scaled down with them: a 200-execution monitor window and
// fast-changing branches keep every machine mechanism exercised.
func testParams() core.Params {
	p := core.DefaultParams().Scaled(50)
	p.WaitPeriod = 5_000
	return p
}

const testRunInstrs = 1_500_000

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RunInstrs = testRunInstrs
	return cfg
}

func synth(t *testing.T, changerFrac float64) *program.Program {
	t.Helper()
	o := program.DefaultSynthOptions()
	o.Regions = 8
	o.MeanTrip = 16
	o.RunInstrs = testRunInstrs
	o.BiasedFrac = 0.6
	o.ChangerFrac = changerFrac
	p, err := program.Synthesize("mssp-test", o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunProducesSaneResult(t *testing.T) {
	res := Run(synth(t, 0.1), core.New(testParams()), testConfig())
	if res.Tasks == 0 {
		t.Fatal("no tasks dispatched")
	}
	if res.MasterCycles <= 0 || res.BaselineCycles <= 0 {
		t.Fatalf("cycles %v / %v", res.MasterCycles, res.BaselineCycles)
	}
	if res.OriginalInstrs < testConfig().RunInstrs {
		t.Fatalf("OriginalInstrs = %d", res.OriginalInstrs)
	}
	if res.Speedup() <= 0 {
		t.Fatalf("Speedup = %v", res.Speedup())
	}
}

func TestDistillationShrinksMasterStream(t *testing.T) {
	res := Run(synth(t, 0.05), core.New(testParams()), testConfig())
	if res.DistilledInstrs >= res.OriginalInstrs {
		t.Fatalf("distilled %d >= original %d: speculation removed nothing",
			res.DistilledInstrs, res.OriginalInstrs)
	}
}

func TestMSSPBeatsBaselineWithGoodControl(t *testing.T) {
	// With few changers and reactive control the distilled program must
	// outrun the superscalar baseline.
	res := Run(synth(t, 0.02), core.New(testParams()), testConfig())
	if res.Speedup() <= 1.0 {
		t.Fatalf("closed-loop MSSP speedup = %v, want > 1", res.Speedup())
	}
}

func TestOpenLoopSuffersOnChangers(t *testing.T) {
	prog := synth(t, 0.4)
	closed := Run(prog, core.New(testParams()), testConfig())
	open := Run(prog, core.New(testParams().WithNoEviction()), testConfig())
	if open.TaskMisspecs <= closed.TaskMisspecs {
		t.Fatalf("open-loop misspecs %d <= closed-loop %d",
			open.TaskMisspecs, closed.TaskMisspecs)
	}
	if open.Speedup() >= closed.Speedup() {
		t.Fatalf("open-loop speedup %v >= closed-loop %v",
			open.Speedup(), closed.Speedup())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		return Run(synth(t, 0.1), core.New(testParams()), testConfig())
	}
	a, b := run(), run()
	if a.MasterCycles != b.MasterCycles || a.Tasks != b.Tasks ||
		a.TaskMisspecs != b.TaskMisspecs || a.BaselineCycles != b.BaselineCycles {
		t.Fatalf("nondeterministic results: %+v vs %+v", a, b)
	}
}

func TestBaselineAlone(t *testing.T) {
	cycles, st := Baseline(synth(t, 0.1), 200_000)
	if cycles <= 0 || st.Instrs < 200_000 {
		t.Fatalf("baseline cycles=%v instrs=%d", cycles, st.Instrs)
	}
	// Short cold-cache runs on streaming regions are memory-bound.
	if ipc := st.IPC(); ipc <= 0.1 || ipc > 4 {
		t.Fatalf("baseline IPC = %v outside a plausible range", ipc)
	}
}

func TestLatencyInsensitivity(t *testing.T) {
	prog := synth(t, 0.1)
	speedup := func(lat uint64) float64 {
		cfg := testConfig()
		cfg.OptLatencyCycles = lat
		p := testParams()
		p.OptLatency = lat
		return Run(prog, core.New(p), cfg).Speedup()
	}
	s0 := speedup(0)
	s1 := speedup(2_000)
	// The paper's claim: optimization latency has a small effect. Allow
	// 10% on these very short runs.
	if s1 < s0*0.90 {
		t.Fatalf("latency 2k dropped speedup from %v to %v", s0, s1)
	}
}

func TestReoptBookkeeping(t *testing.T) {
	res := Run(synth(t, 0.4), core.New(testParams()), testConfig())
	if res.Reopts == 0 {
		t.Fatal("no re-optimizations despite heavy changers")
	}
	if res.ChangesApplied < res.Reopts {
		t.Fatalf("ChangesApplied %d < Reopts %d", res.ChangesApplied, res.Reopts)
	}
}

func TestWatchdogTripsUnderPathologicalSquashing(t *testing.T) {
	// Heavy changers with no eviction make the open-loop controller keep
	// every stale speculation deployed; an aggressive bound must trip the
	// watchdog, execute fallback tasks, and still finish the run.
	prog := synth(t, 0.5)
	cfg := testConfig()
	cfg.MaxConsecutiveSquashes = 1
	res := Run(prog, core.New(testParams().WithNoEviction()), cfg)
	if res.WatchdogTrips == 0 {
		t.Fatal("watchdog never tripped despite squash-per-task bound of 1")
	}
	if res.FallbackTasks == 0 {
		t.Fatal("watchdog tripped but no fallback tasks ran")
	}
	if res.OriginalInstrs < cfg.RunInstrs {
		t.Fatalf("run did not complete: %d of %d instrs", res.OriginalInstrs, cfg.RunInstrs)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	prog := synth(t, 0.5)
	cfg := testConfig()
	cfg.MaxConsecutiveSquashes = 0
	res := Run(prog, core.New(testParams().WithNoEviction()), cfg)
	if res.WatchdogTrips != 0 || res.FallbackTasks != 0 {
		t.Fatalf("disabled watchdog still acted: trips=%d fallback=%d",
			res.WatchdogTrips, res.FallbackTasks)
	}
}

func TestWatchdogBoundsConsecutiveSquashes(t *testing.T) {
	// With the watchdog at 1, two squashes can never be adjacent: every
	// squash is followed by a non-speculative (unsquashable) task, so
	// misspecs are at most half the tasks.
	prog := synth(t, 0.5)
	cfg := testConfig()
	cfg.MaxConsecutiveSquashes = 1
	res := Run(prog, core.New(testParams().WithNoEviction()), cfg)
	if res.TaskMisspecs*2 > res.Tasks {
		t.Fatalf("misspecs %d exceed half of %d tasks despite watchdog", res.TaskMisspecs, res.Tasks)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Slaves != 8 {
		t.Fatalf("Slaves = %d, want 8 (Table 5)", cfg.Slaves)
	}
	if cfg.TaskBlocks <= 0 || cfg.MaxUnverified <= 0 {
		t.Fatalf("bad defaults %+v", cfg)
	}
}

func TestResultSpeedupZeroSafe(t *testing.T) {
	if (Result{}).Speedup() != 0 {
		t.Fatal("zero result Speedup should be 0")
	}
}

func TestSlaveBandwidthBottleneck(t *testing.T) {
	// A single trailing core cannot verify the stream as fast as the
	// master produces it; the run-ahead bound throttles the master.
	prog := synth(t, 0.05)
	speedup := func(slaves int) float64 {
		cfg := testConfig()
		cfg.Slaves = slaves
		cfg.MaxUnverified = 2 * slaves
		return Run(prog, core.New(testParams()), cfg).Speedup()
	}
	one, two := speedup(1), speedup(2)
	if one >= two {
		t.Fatalf("1-slave speedup %v not below 2-slave %v", one, two)
	}
}

func TestValueSpeculationContributes(t *testing.T) {
	// The distiller folds invariant loads into constants; the value
	// controller must record correct value speculations, and phase
	// switches must be survivable (evict + re-learn, not a crash loop).
	res := Run(synth(t, 0.05), core.New(testParams()), testConfig())
	if res.ValueStats.Events == 0 {
		t.Fatal("no value loads observed")
	}
	if res.ValueStats.Correct == 0 {
		t.Fatal("no correct value speculations")
	}
	if res.ValueStats.Selections == 0 {
		t.Fatal("no value loads selected")
	}
	// Value misspeculation must stay far below the correct rate.
	if res.ValueStats.Misspec*10 > res.ValueStats.Correct {
		t.Fatalf("value misspec %d vs correct %d", res.ValueStats.Misspec, res.ValueStats.Correct)
	}
}
