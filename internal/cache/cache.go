// Package cache implements the simulated memory hierarchy of Table 5:
// per-core set-associative LRU L1 caches, a shared L2, a fixed main-memory
// latency, and a lightweight directory that charges coherence hop latency
// when a line moves between cores.
package cache

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Assoc     int
	BlockSize int
	// Latency is the access (hit) latency in cycles.
	Latency int
}

// Table 5 configurations.
var (
	// LeadingL1 is the leading core's 64 KB 2-way 64 B-block L1 (3-cycle
	// access including address generation).
	LeadingL1 = Config{SizeBytes: 64 << 10, Assoc: 2, BlockSize: 64, Latency: 3}
	// TrailingL1 is a trailing core's 8 KB 8-way L1 (same latency).
	TrailingL1 = Config{SizeBytes: 8 << 10, Assoc: 8, BlockSize: 64, Latency: 3}
	// SharedL2 is the shared 1 MB 8-way L2 with a 10-cycle minimum access.
	SharedL2 = Config{SizeBytes: 1 << 20, Assoc: 8, BlockSize: 64, Latency: 10}
)

// MemoryLatency is the main-memory minimum latency after the L2 (Table 5).
const MemoryLatency = 200

// HopLatency is the minimum uncongested coherence hop between processors.
const HopLatency = 10

// Cache is a set-associative LRU cache. It tracks tags only (timing
// simulation), not data.
type Cache struct {
	cfg      Config
	sets     int
	tags     []uint64
	valid    []bool
	dirty    []bool
	lruTick  []uint64
	tick     uint64
	Hits     uint64
	Misses   uint64
	Evicts   uint64
	blkShift uint
}

// New returns an empty cache. The configuration must have a power-of-two
// block size and at least one set.
func New(cfg Config) *Cache {
	if cfg.BlockSize <= 0 || cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		panic("cache: block size must be a power of two")
	}
	sets := cfg.SizeBytes / (cfg.BlockSize * cfg.Assoc)
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < cfg.BlockSize {
		shift++
	}
	n := sets * cfg.Assoc
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		lruTick:  make([]uint64, n),
		blkShift: shift,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Block returns the block address (address with the offset bits cleared).
func (c *Cache) Block(addr uint64) uint64 { return addr >> c.blkShift }

func (c *Cache) set(blk uint64) int { return int(blk % uint64(c.sets)) }

// Access looks up addr, filling the line on a miss (evicting LRU). It
// returns hit, and whether a dirty line was evicted.
func (c *Cache) Access(addr uint64, write bool) (hit, dirtyEvict bool) {
	blk := c.Block(addr)
	base := c.set(blk) * c.cfg.Assoc
	c.tick++
	victim := base
	for i := base; i < base+c.cfg.Assoc; i++ {
		if c.valid[i] && c.tags[i] == blk {
			c.lruTick[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.Hits++
			return true, false
		}
		if !c.valid[victim] {
			continue
		}
		if !c.valid[i] || c.lruTick[i] < c.lruTick[victim] {
			victim = i
		}
	}
	c.Misses++
	dirtyEvict = c.valid[victim] && c.dirty[victim]
	if c.valid[victim] {
		c.Evicts++
	}
	c.valid[victim] = true
	c.tags[victim] = blk
	c.dirty[victim] = write
	c.lruTick[victim] = c.tick
	return false, dirtyEvict
}

// Contains reports whether addr currently hits without updating LRU state.
func (c *Cache) Contains(addr uint64) bool {
	blk := c.Block(addr)
	base := c.set(blk) * c.cfg.Assoc
	for i := base; i < base+c.cfg.Assoc; i++ {
		if c.valid[i] && c.tags[i] == blk {
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (used at simulated checkpoint starts:
// "cold caches and predictors").
func (c *Cache) InvalidateAll() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// Hierarchy is one core's view of the memory system: a private L1 backed by
// the shared L2 and memory, with directory-based hop charges when a block
// last written by another core is accessed.
type Hierarchy struct {
	L1   *Cache
	l2   *Cache
	dir  *Directory
	core int

	L1Misses, L2Misses uint64
	CoherenceHops      uint64
}

// Directory tracks, per block, the last core to write it, and charges hop
// latency when ownership moves (a minimal MOESI-flavored timing model: the
// protocol's correctness machinery is irrelevant to timing here, only the
// inter-core transfer latency matters).
type Directory struct {
	owner map[uint64]int
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{owner: make(map[uint64]int)} }

// access records core touching blk (write = takes ownership) and reports
// whether the block was owned dirty by a different core (requiring a hop).
// A cross-core read demotes the line to shared, so only the first reader
// after a write pays the transfer.
func (d *Directory) access(core int, blk uint64, write bool) bool {
	prev, owned := d.owner[blk]
	moved := owned && prev != core
	if write {
		d.owner[blk] = core
	} else if moved {
		delete(d.owner, blk)
	}
	return moved
}

// Shared bundles the components shared between cores.
type Shared struct {
	L2  *Cache
	Dir *Directory
}

// NewShared returns the shared L2 and directory per Table 5.
func NewShared() *Shared {
	return &Shared{L2: New(SharedL2), Dir: NewDirectory()}
}

// NewHierarchy returns core coreID's memory hierarchy with the given private
// L1 configuration.
func NewHierarchy(coreID int, l1 Config, shared *Shared) *Hierarchy {
	return &Hierarchy{
		L1:   New(l1),
		l2:   shared.L2,
		dir:  shared.Dir,
		core: coreID,
	}
}

// Access simulates a load or store and returns its latency in cycles.
func (h *Hierarchy) Access(addr uint64, write bool) int {
	lat := h.L1.cfg.Latency
	hit, _ := h.L1.Access(addr, write)
	moved := h.dir.access(h.core, h.L1.Block(addr)<<h.L1.blkShift, write)
	if moved {
		// The block was last written by another core: a coherence hop
		// (minimum 10 cycles uncongested) fetches the fresh copy.
		h.CoherenceHops++
		lat += HopLatency
	}
	if hit {
		return lat
	}
	h.L1Misses++
	lat += h.l2.cfg.Latency
	l2hit, _ := h.l2.Access(addr, write)
	if l2hit {
		return lat
	}
	h.L2Misses++
	return lat + MemoryLatency
}
