package cache

import (
	"testing"
	"testing/quick"
)

func tiny(size, assoc int) *Cache {
	return New(Config{SizeBytes: size, Assoc: assoc, BlockSize: 64, Latency: 1})
}

func TestMissThenHit(t *testing.T) {
	c := tiny(1<<10, 2)
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _ := c.Access(0x1030, false); !hit {
		t.Fatal("same-block access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 64B blocks = 1KB. Three blocks mapping to the
	// same set: the least recently used is evicted.
	c := tiny(1<<10, 2)
	setStride := uint64(8 * 64) // same set every 512 bytes
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Contains(b) {
		t.Fatal("b not evicted despite being LRU")
	}
	if !c.Contains(d) {
		t.Fatal("d not resident after fill")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := tiny(128, 1) // 2 sets, direct-mapped
	c.Access(0x0, true)
	_, dirtyEvict := c.Access(0x80, false) // same set
	if !dirtyEvict {
		t.Fatal("dirty line eviction not reported")
	}
	_, dirtyEvict = c.Access(0x100, false)
	if dirtyEvict {
		t.Fatal("clean eviction reported dirty")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := tiny(1<<10, 2)
	c.Access(0x40, true)
	c.InvalidateAll()
	if c.Contains(0x40) {
		t.Fatal("line survived InvalidateAll")
	}
}

func TestBadBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{SizeBytes: 1024, Assoc: 2, BlockSize: 48})
}

// TestLRUStackProperty checks the inclusion ("stack") property of LRU: every
// hit in a k-way cache is also a hit in a 2k-way cache of twice the size with
// the same set count.
func TestLRUStackProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		small := tiny(1<<10, 2) // 8 sets, 2 ways
		large := tiny(1<<11, 4) // 8 sets, 4 ways
		for _, a := range addrs {
			addr := uint64(a) * 8
			hitS, _ := small.Access(addr, false)
			hitL, _ := large.Access(addr, false)
			if hitS && !hitL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryHopCharging(t *testing.T) {
	shared := NewShared()
	h0 := NewHierarchy(0, TrailingL1, shared)
	h1 := NewHierarchy(1, TrailingL1, shared)
	// Core 0 writes a block (filling the shared L2); core 1 reading it
	// hits the L2 but pays a coherence hop on top.
	h0.Access(0x4000, true)
	lat := h1.Access(0x4000, false)
	if want := TrailingL1.Latency + SharedL2.Latency + HopLatency; lat != want {
		t.Fatalf("cross-core access latency = %d, want %d", lat, want)
	}
	if h1.CoherenceHops != 1 {
		t.Fatalf("CoherenceHops = %d, want 1", h1.CoherenceHops)
	}
	// Core 1 re-reading pays no further hop (no new write).
	h1.Access(0x4000, false)
	if h1.CoherenceHops != 1 {
		t.Fatalf("CoherenceHops = %d after re-read, want 1", h1.CoherenceHops)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	shared := NewShared()
	h := NewHierarchy(0, LeadingL1, shared)
	// Cold access: L1 miss + L2 miss + memory.
	cold := h.Access(0x10_0000, false)
	want := LeadingL1.Latency + SharedL2.Latency + MemoryLatency
	if cold != want {
		t.Fatalf("cold latency = %d, want %d", cold, want)
	}
	// Hot access: L1 hit.
	hot := h.Access(0x10_0000, false)
	if hot != LeadingL1.Latency {
		t.Fatalf("hot latency = %d, want %d", hot, LeadingL1.Latency)
	}
	if h.L1Misses != 1 || h.L2Misses != 1 {
		t.Fatalf("miss counters %d/%d", h.L1Misses, h.L2Misses)
	}
}

func TestL2HitLatency(t *testing.T) {
	shared := NewShared()
	h := NewHierarchy(0, TrailingL1, shared)
	// Fill enough blocks to overflow the 8KB L1 but stay in the 1MB L2.
	for addr := uint64(0); addr < 64<<10; addr += 64 {
		h.Access(addr, false)
	}
	// The first blocks are gone from L1 but resident in L2.
	lat := h.Access(0, false)
	if lat != TrailingL1.Latency+SharedL2.Latency {
		t.Fatalf("L2-hit latency = %d, want %d", lat, TrailingL1.Latency+SharedL2.Latency)
	}
}

func TestTable5Configs(t *testing.T) {
	if LeadingL1.SizeBytes != 64<<10 || LeadingL1.Assoc != 2 || LeadingL1.Latency != 3 {
		t.Fatalf("LeadingL1 = %+v", LeadingL1)
	}
	if TrailingL1.SizeBytes != 8<<10 || TrailingL1.Assoc != 8 {
		t.Fatalf("TrailingL1 = %+v", TrailingL1)
	}
	if SharedL2.SizeBytes != 1<<20 || SharedL2.Latency != 10 {
		t.Fatalf("SharedL2 = %+v", SharedL2)
	}
	if MemoryLatency != 200 || HopLatency != 10 {
		t.Fatal("memory/hop latencies wrong")
	}
}
