package plot

import (
	"math"
	"strings"
	"testing"
)

func samplePlot() *Plot {
	return &Plot{
		Title:  "Test & Title",
		XLabel: "x axis",
		YLabel: "y axis",
		Series: []Series{
			{Name: "scatter", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}, Style: Scatter},
			{Name: "line", X: []float64{1, 2, 3}, Y: []float64{2, 3, 5}, Style: Line},
		},
	}
}

func TestWriteSVGStructure(t *testing.T) {
	var b strings.Builder
	if err := samplePlot().WriteSVG(&b, 400, 300); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "<polyline", "Test &amp; Title", "x axis", "y axis"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<circle") != 3 {
		t.Fatalf("expected 3 scatter markers, got %d", strings.Count(out, "<circle"))
	}
}

func TestBars(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "bars", X: []float64{0, 1, 2}, Y: []float64{3, 1, 2}, Style: Bars}}}
	var b strings.Builder
	if err := p.WriteSVG(&b, 300, 200); err != nil {
		t.Fatal(err)
	}
	// Frame rect + 3 bar rects + legend swatch.
	if got := strings.Count(b.String(), "<rect"); got != 5 {
		t.Fatalf("rect count = %d, want 5", got)
	}
}

func TestGridLaysOutAllPlots(t *testing.T) {
	plots := []*Plot{samplePlot(), samplePlot(), samplePlot()}
	var b strings.Builder
	if err := Grid(&b, plots, 2, 300, 200); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `width="600" height="400"`) {
		t.Fatalf("grid dimensions wrong: %s", out[:120])
	}
	if got := strings.Count(out, "Test &amp; Title"); got != 3 {
		t.Fatalf("title count = %d", got)
	}
}

func TestEmptyPlot(t *testing.T) {
	var b strings.Builder
	if err := (&Plot{}).WriteSVG(&b, 200, 150); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("empty plot produced no SVG")
	}
}

func TestLogXAxis(t *testing.T) {
	p := &Plot{
		LogX:   true,
		Series: []Series{{Name: "s", X: []float64{0.001, 0.1, 10}, Y: []float64{1, 2, 3}, Style: Line}},
	}
	var b strings.Builder
	if err := p.WriteSVG(&b, 300, 200); err != nil {
		t.Fatal(err)
	}
}

func TestFixedYRange(t *testing.T) {
	p := samplePlot()
	p.YFixed, p.YMin, p.YMax = true, 0, 100
	xmin, xmax, ymin, ymax := p.ranges()
	if ymin != 0 || ymax != 100 {
		t.Fatalf("fixed y range = [%v, %v]", ymin, ymax)
	}
	if xmin >= xmax {
		t.Fatal("degenerate x range")
	}
}

func TestTicksRound(t *testing.T) {
	ts := ticks(0, 10, 5)
	if len(ts) < 3 || len(ts) > 11 {
		t.Fatalf("ticks(0,10,5) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
	if ticks(5, 5, 5) != nil {
		t.Fatal("degenerate range should yield no ticks")
	}
}

func TestTicksCoverRangeProperty(t *testing.T) {
	for _, span := range []struct{ lo, hi float64 }{
		{0, 1}, {0, 0.001}, {-50, 150}, {1e6, 2e6}, {0.023, 0.87},
	} {
		ts := ticks(span.lo, span.hi, 5)
		if len(ts) == 0 {
			t.Fatalf("no ticks for [%v, %v]", span.lo, span.hi)
		}
		for _, tk := range ts {
			if tk < span.lo-1e-9 || tk > span.hi+1e-9 {
				t.Fatalf("tick %v outside [%v, %v]", tk, span.lo, span.hi)
			}
		}
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(0.5, false) != "0.5" {
		t.Fatalf("formatTick = %q", formatTick(0.5, false))
	}
	if got := formatTick(math.Log10(100), true); got != "100" {
		t.Fatalf("log formatTick = %q", got)
	}
}
