// Package plot renders simple SVG charts — scatter, line, and bar — with
// axes, ticks, and legends, using only the standard library. The experiment
// drivers use it to regenerate the paper's figures as figures, not just as
// tables (reactivespec -format svg fig2 > fig2.svg).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Style selects how a series is drawn.
type Style uint8

const (
	// Scatter draws one marker per point.
	Scatter Style = iota
	// Line connects the points with a polyline.
	Line
	// Bars draws one vertical bar per point (x is the bar center).
	Bars
	// Segments draws the points pairwise as independent strokes: points
	// (0,1), (2,3), … each become one line segment. Timeline charts use
	// it for constant-state spans (reactivespec timeline).
	Segments
)

// Series is one named data series.
type Series struct {
	Name  string
	X, Y  []float64
	Style Style
}

// Plot is one chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogX plots the x axis on a log10 scale (all x must be > 0).
	LogX bool
	// YMin/YMax fix the y range when YFixed is set.
	YMin, YMax float64
	YFixed     bool
}

// palette holds visually distinct series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginL = 64.0
	marginR = 16.0
	marginT = 36.0
	marginB = 48.0
)

// WriteSVG renders the plot as a standalone SVG document.
func (p *Plot) WriteSVG(w io.Writer, width, height int) error {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	p.render(&b, 0, 0, float64(width), float64(height))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Grid renders several plots in a column-major grid as one SVG document.
func Grid(w io.Writer, plots []*Plot, cols, cellW, cellH int) error {
	if cols < 1 {
		cols = 1
	}
	rows := (len(plots) + cols - 1) / cols
	width, height := cols*cellW, rows*cellH
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	for i, p := range plots {
		x := float64((i % cols) * cellW)
		y := float64((i / cols) * cellH)
		p.render(&b, x, y, float64(cellW), float64(cellH))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// render draws the plot into the rectangle (ox, oy, w, h).
func (p *Plot) render(b *strings.Builder, ox, oy, w, h float64) {
	xmin, xmax, ymin, ymax := p.ranges()
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB
	tx := func(x float64) float64 {
		if p.LogX {
			x = math.Log10(math.Max(x, 1e-12))
		}
		return ox + marginL + (x-xmin)/(xmax-xmin)*plotW
	}
	ty := func(y float64) float64 {
		return oy + marginT + (1-(y-ymin)/(ymax-ymin))*plotH
	}

	// Frame and title.
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="white" stroke="#333"/>`+"\n",
		ox+marginL, oy+marginT, plotW, plotH)
	if p.Title != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="13" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
			ox+marginL+plotW/2, oy+marginT-12, esc(p.Title))
	}

	// Ticks.
	for _, t := range ticks(xmin, xmax, 5) {
		x := ox + marginL + (t-xmin)/(xmax-xmin)*plotW
		label := formatTick(t, p.LogX)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			x, oy+marginT, x, oy+marginT+plotH)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x, oy+marginT+plotH+14, label)
	}
	for _, t := range ticks(ymin, ymax, 5) {
		y := oy + marginT + (1-(t-ymin)/(ymax-ymin))*plotH
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			ox+marginL, y, ox+marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			ox+marginL-4, y+3, formatTick(t, false))
	}
	// Axis labels.
	if p.XLabel != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			ox+marginL+plotW/2, oy+h-8, esc(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 %.1f %.1f)">%s</text>`+"\n",
			ox+14, oy+marginT+plotH/2, ox+14, oy+marginT+plotH/2, esc(p.YLabel))
	}

	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		switch s.Style {
		case Line:
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.X[i]), ty(s.Y[i])))
			}
			fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		case Segments:
			for i := 0; i+1 < len(s.X); i += 2 {
				fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="4" stroke-opacity="0.85"/>`+"\n",
					tx(s.X[i]), ty(s.Y[i]), tx(s.X[i+1]), ty(s.Y[i+1]), color)
			}
		case Bars:
			barW := plotW / float64(len(s.X)+1) * 0.7
			for i := range s.X {
				x := tx(s.X[i])
				y := ty(s.Y[i])
				fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.8"/>`+"\n",
					x-barW/2, y, barW, ty(ymin)-y, color)
			}
		default: // Scatter
			for i := range s.X {
				fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s" fill-opacity="0.85"/>`+"\n",
					tx(s.X[i]), ty(s.Y[i]), color)
			}
		}
		// Legend.
		lx := ox + marginL + 8
		ly := oy + marginT + 14 + float64(si)*14
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="9" height="9" fill="%s"/>`+"\n", lx, ly-8, color)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			lx+13, ly, esc(s.Name))
	}
}

// ranges computes the data ranges with a small padding.
func (p *Plot) ranges() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			x := s.X[i]
			if p.LogX {
				x = math.Log10(math.Max(x, 1e-12))
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if p.YFixed {
		ymin, ymax = p.YMin, p.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// 5% padding.
	dx, dy := (xmax-xmin)*0.05, (ymax-ymin)*0.05
	xmin -= dx
	xmax += dx
	if !p.YFixed {
		ymin -= dy
		ymax += dy
	}
	return xmin, xmax, ymin, ymax
}

// ticks returns ~n round tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return nil
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
	}
	for span/step > float64(n) {
		step *= 2.5
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi; t += step {
		out = append(out, t)
	}
	return out
}

func formatTick(t float64, log bool) string {
	if log {
		return fmt.Sprintf("%.3g", math.Pow(10, t))
	}
	return fmt.Sprintf("%.4g", t)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
