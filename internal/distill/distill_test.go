package distill

import (
	"testing"

	"reactivespec/internal/behavior"
	"reactivespec/internal/program"
)

// fixedPolicy speculates branch 0 in the given direction.
type fixedPolicy struct {
	dir  bool
	live bool
}

func (p fixedPolicy) Speculation(branch int) (bool, bool) {
	if branch == 0 {
		return p.dir, p.live
	}
	return false, false
}

func testProgram() *program.Program {
	return &program.Program{
		Name: "d",
		Regions: []program.Region{{
			Name: "r0", Weight: 1,
			Blocks: []program.Block{
				{Ops: 6, Loads: 2, DeadOps: 3, DeadLoads: 1,
					Kind: program.KindCond, Branch: 0, TakenNext: 0, FallNext: -1, ValueLoad: -1},
			},
		}},
		Branches: []program.Branch{{Model: behavior.Fixed(true), Region: 0}},
	}
}

func TestHotRegionDetection(t *testing.T) {
	d := New(testProgram())
	d.HotThreshold = 3
	for i := 0; i < 2; i++ {
		d.OnRegionEntry(0)
		if d.Optimized(0) {
			t.Fatalf("region optimized after %d invocations", i+1)
		}
	}
	d.OnRegionEntry(0)
	if !d.Optimized(0) {
		t.Fatal("region not optimized at threshold")
	}
	if d.RegionsOptimized != 1 {
		t.Fatalf("RegionsOptimized = %d", d.RegionsOptimized)
	}
}

func TestDistillRemovesSpeculatedBranch(t *testing.T) {
	p := testProgram()
	d := New(p)
	d.HotThreshold = 1
	d.OnRegionEntry(0)
	blk := &p.Regions[0].Blocks[0]
	st := program.Step{Region: 0, Block: 0, Branch: 0, Taken: true, Kind: program.KindCond}
	cost, bad := d.Distill(blk, st, fixedPolicy{dir: true, live: true}, NoValues)
	if bad {
		t.Fatal("matching outcome flagged as violation")
	}
	if !cost.SkipBranch || cost.OpsRemoved != 3 || cost.LoadsRemoved != 1 {
		t.Fatalf("cost = %+v", cost)
	}
}

func TestDistillDetectsViolation(t *testing.T) {
	p := testProgram()
	d := New(p)
	d.HotThreshold = 1
	d.OnRegionEntry(0)
	blk := &p.Regions[0].Blocks[0]
	st := program.Step{Region: 0, Block: 0, Branch: 0, Taken: false, Kind: program.KindCond}
	_, bad := d.Distill(blk, st, fixedPolicy{dir: true, live: true}, NoValues)
	if !bad {
		t.Fatal("contradicting outcome not flagged")
	}
}

func TestDistillColdRegionUntouched(t *testing.T) {
	p := testProgram()
	d := New(p)
	blk := &p.Regions[0].Blocks[0]
	st := program.Step{Region: 0, Block: 0, Branch: 0, Taken: false, Kind: program.KindCond}
	cost, bad := d.Distill(blk, st, fixedPolicy{dir: true, live: true}, NoValues)
	if bad || cost.SkipBranch {
		t.Fatal("cold region was distilled")
	}
}

func TestDistillUnspeculatedBranchUntouched(t *testing.T) {
	p := testProgram()
	d := New(p)
	d.HotThreshold = 1
	d.OnRegionEntry(0)
	blk := &p.Regions[0].Blocks[0]
	st := program.Step{Region: 0, Block: 0, Branch: 0, Taken: false, Kind: program.KindCond}
	cost, bad := d.Distill(blk, st, fixedPolicy{live: false}, NoValues)
	if bad || cost.SkipBranch {
		t.Fatal("unspeculated branch was distilled")
	}
}

func TestReoptBatching(t *testing.T) {
	d := New(testProgram())
	d.BatchWindow = 1_000
	d.NoteTransition(0, 100)
	d.NoteTransition(0, 500)   // batched
	d.NoteTransition(0, 1_099) // batched (window is 100+1000)
	d.NoteTransition(0, 2_000) // new re-optimization
	if d.Reopts != 2 {
		t.Fatalf("Reopts = %d, want 2", d.Reopts)
	}
	if d.ChangesApplied != 4 {
		t.Fatalf("ChangesApplied = %d, want 4", d.ChangesApplied)
	}
}

func TestNoteTransitionIgnoresBadBranch(t *testing.T) {
	d := New(testProgram())
	d.NoteTransition(-1, 0)
	d.NoteTransition(99, 0)
	if d.Reopts != 0 {
		t.Fatal("invalid branch indices triggered re-optimizations")
	}
}
