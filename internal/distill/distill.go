// Package distill implements the dynamic optimizer's code distiller: it
// turns regions of the original program into approximate (speculative)
// versions with the speculated branches — and the code they make dead —
// removed, with no checking code (the MSSP property that distinguishes it
// from checked-speculation systems like IA-64; see the paper's Figure 1).
//
// The distiller also models the optimizer's hot-region detector and the
// region-granularity re-optimization requests that classification
// transitions trigger, including the batching effect the paper observes
// (about half of re-optimizations apply more than one change).
package distill

import (
	"reactivespec/internal/cpu"
	"reactivespec/internal/program"
)

// Policy supplies the current speculation decisions (live deployments) per
// static branch. core.Controller satisfies it via an adapter in the mssp
// package.
type Policy interface {
	// Speculation reports whether branch id has live speculative code and
	// in which direction.
	Speculation(branch int) (dir bool, live bool)
}

// ValuePolicy supplies the current value-speculation decisions per static
// load (values.Controller satisfies it).
type ValuePolicy interface {
	// Speculating reports whether constant speculation is live for the
	// load and, if so, the speculated value.
	Speculating(load int) (value uint32, live bool)
}

// NoValues is a ValuePolicy that never speculates (branch-only distillation).
var NoValues ValuePolicy = noValues{}

type noValues struct{}

func (noValues) Speculating(int) (uint32, bool) { return 0, false }

// Distiller tracks which regions have optimized (distilled) versions
// deployed and rewrites dynamic blocks accordingly.
type Distiller struct {
	prog *program.Program
	// HotThreshold is the number of invocations after which a region is
	// considered hot and a distilled version is deployed. The paper
	// parameterizes its detector to find regions "artificially fast" in
	// short runs; the default matches that.
	HotThreshold uint64

	hotCount  []uint64
	optimized []bool

	// Re-optimization bookkeeping.
	pendingUntil []uint64 // per-region: instruction count until which changes batch
	// BatchWindow is the instruction window within which multiple
	// classification changes to one region fold into one re-optimization.
	BatchWindow uint64

	// Stats.
	RegionsOptimized int
	Reopts           uint64
	ChangesApplied   uint64
}

// New returns a distiller for the program.
func New(p *program.Program) *Distiller {
	return &Distiller{
		prog:         p,
		HotThreshold: 4,
		BatchWindow:  100_000,
		hotCount:     make([]uint64, len(p.Regions)),
		optimized:    make([]bool, len(p.Regions)),
		pendingUntil: make([]uint64, len(p.Regions)),
	}
}

// OnRegionEntry notes a region invocation; once hot, the region's distilled
// version is deployed.
func (d *Distiller) OnRegionEntry(region int) {
	if d.optimized[region] {
		return
	}
	d.hotCount[region]++
	if d.hotCount[region] >= d.HotThreshold {
		d.optimized[region] = true
		d.RegionsOptimized++
	}
}

// Optimized reports whether the region currently runs its distilled version.
func (d *Distiller) Optimized(region int) bool { return d.optimized[region] }

// Distill rewrites one dynamic block under the current branch- and
// value-speculation policies. It returns the block cost for the leading core
// and whether executing the distilled code at this step violates a
// speculation (the outcome contradicts a removed branch's assumed direction,
// or the value produced differs from a folded constant).
func (d *Distiller) Distill(blk *program.Block, st program.Step, pol Policy, vpol ValuePolicy) (cpu.BlockCost, bool) {
	if !d.optimized[st.Region] {
		return cpu.BlockCost{}, false
	}
	var cost cpu.BlockCost
	violated := false
	if blk.Kind == program.KindCond && blk.Branch >= 0 {
		if dir, live := pol.Speculation(blk.Branch); live {
			cost.SkipBranch = true
			cost.OpsRemoved += blk.DeadOps
			cost.LoadsRemoved += blk.DeadLoads
			if st.Taken != dir {
				violated = true
			}
		}
	}
	if blk.ValueLoad >= 0 && vpol != nil {
		if v, live := vpol.Speculating(blk.ValueLoad); live {
			cost.OpsRemoved += blk.FoldOps
			cost.LoadsRemoved += blk.FoldLoads
			if st.Value != v {
				violated = true
			}
		}
	}
	return cost, violated
}

// NoteTransition records that a branch's classification changed at the given
// original-instruction count, requiring its region to be re-optimized.
// Changes landing within BatchWindow of an already-pending re-optimization
// of the same region fold into it.
func (d *Distiller) NoteTransition(branch int, instr uint64) {
	if branch < 0 || branch >= len(d.prog.Branches) {
		return
	}
	region := d.prog.Branches[branch].Region
	d.ChangesApplied++
	if instr < d.pendingUntil[region] {
		return // batched into the in-flight re-optimization
	}
	d.Reopts++
	d.pendingUntil[region] = instr + d.BatchWindow
}
