// Benchmarks for the batched ingest hot path: per-event Apply vs the
// batch-grouped ApplyBatch on the same event stream, and the full HTTP
// ingest handler (decode + apply + respond) with allocation accounting.
// scripts/bench.sh runs these and records the numbers in BENCH_ingest.json.
package reactivespec_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
)

// benchBurstyEvents generates the loop-dominated stream real traces look
// like: bursts of one branch (geometric, mean ~meanBurst) over a small
// working set, so consecutive events usually hit the same shard and often
// the same branch — the case batch grouping and the last-entry cache
// amortize.
func benchBurstyEvents(n, nbranch, meanBurst int) []trace.Event {
	evs := make([]trace.Event, 0, n)
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for len(evs) < n {
		r := next()
		branch := trace.BranchID(r) % trace.BranchID(nbranch)
		burst := 1 + int(r>>40)%(2*meanBurst)
		for j := 0; j < burst && len(evs) < n; j++ {
			r = next()
			evs = append(evs, trace.Event{
				Branch: branch,
				Taken:  r&7 < 5,
				Gap:    uint32(4 + r>>56&7),
			})
		}
	}
	return evs
}

const (
	benchIngestEvents = 1 << 15
	benchIngestShards = 4
)

// BenchmarkTableApply is the per-event baseline: one shard lock acquisition
// and one map lookup per event.
func BenchmarkTableApply(b *testing.B) {
	evs := benchBurstyEvents(benchIngestEvents, 64, 24)
	t := server.NewTable(core.DefaultParams().Scaled(10), benchIngestShards)
	var instr uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ev := range evs {
			instr += uint64(ev.Gap)
			t.Apply("bench", ev, instr)
		}
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

// BenchmarkTableApplyBatch is the batch-grouped path over the identical
// stream: one lock acquisition per same-shard run, map lookups skipped for
// repeated branches.
func BenchmarkTableApplyBatch(b *testing.B) {
	evs := benchBurstyEvents(benchIngestEvents, 64, 24)
	t := server.NewTable(core.DefaultParams().Scaled(10), benchIngestShards)
	var instr uint64
	dst := make([]byte, 0, len(evs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, instr = t.ApplyBatch("bench", evs, instr, dst[:0])
		if len(dst) != len(evs) {
			b.Fatalf("%d decisions for %d events", len(dst), len(evs))
		}
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

// BenchmarkTableApplyBatchKind is the kind-generic serving path over the
// identical stream: same batch grouping, but the events enter as a
// non-branch kind, so every apply pays the kind-program key encoding the
// v2 API threads through the table. scripts/bench.sh gates this row
// against BenchmarkTableApplyBatch: generalizing the hot path over kinds
// must cost at most a few percent versus branch-only.
func BenchmarkTableApplyBatchKind(b *testing.B) {
	evs := benchBurstyEvents(benchIngestEvents, 64, 24)
	t := server.NewTable(core.DefaultParams().Scaled(10), benchIngestShards)
	var instr uint64
	dst := make([]byte, 0, len(evs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, instr = t.ApplyBatchKind("bench", trace.KindValue, evs, instr, dst[:0])
		if len(dst) != len(evs) {
			b.Fatalf("%d decisions for %d events", len(dst), len(evs))
		}
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

// discardResponseWriter is an http.ResponseWriter that throws the response
// away, so the handler benchmark measures the handler, not a recorder.
type discardResponseWriter struct{ h http.Header }

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardResponseWriter) WriteHeader(int)             {}

// BenchmarkIngestHandler measures the whole POST /v1/ingest path — frame
// decode, batched apply, response encode — on one pre-encoded batch per op.
// Allocations per op are the tracked number: the pooled scratch should hold
// them near-constant in batch size.
func BenchmarkIngestHandler(b *testing.B) {
	s := server.New(server.Config{Params: core.DefaultParams().Scaled(10), Shards: benchIngestShards})
	h := s.Handler()
	evs := benchBurstyEvents(benchIngestEvents, 64, 24)
	body := trace.AppendFrame(nil, evs)

	req := httptest.NewRequest(http.MethodPost,
		fmt.Sprintf("/v1/ingest?program=bench"), bytes.NewReader(body))
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Body = io.NopCloser(bytes.NewReader(body))
		h.ServeHTTP(w, req)
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}
