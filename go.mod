module reactivespec

go 1.22
