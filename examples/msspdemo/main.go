// MSSP demo: run the Master/Slave Speculative Parallelization machine on one
// synthetic benchmark and compare control policies.
//
// The machine (Table 5: one 4-wide leading core, eight 2-wide trailing
// cores, shared 1 MB L2) executes the distilled speculative program on the
// master and verifies it at task granularity on the slaves. The demo runs the
// crafty-flavored program under closed-loop (reactive) and open-loop
// (no-eviction) speculation control and prints the Figure 7-style comparison.
//
// Run with: go run ./examples/msspdemo
package main

import (
	"fmt"

	"reactivespec/internal/core"
	"reactivespec/internal/mssp"
	"reactivespec/internal/program"
)

func main() {
	opts := program.DefaultSynthOptions()
	opts.Regions = 28
	opts.RunInstrs = 4_000_000
	opts.BiasedFrac = 0.55
	opts.ChangerFrac = 0.30 // plenty of mid-run behavior changes
	prog, err := program.Synthesize("crafty-like", opts)
	if err != nil {
		panic(err)
	}

	cfg := mssp.DefaultConfig()
	cfg.RunInstrs = opts.RunInstrs

	params := core.DefaultParams().Scaled(10).WithWaitPeriod(20_000)
	closed := mssp.Run(prog, core.New(params), cfg)
	open := mssp.Run(prog, core.New(params.WithNoEviction()), cfg)

	fmt.Printf("program: %d regions, %d static branches, %s original instructions\n\n",
		len(prog.Regions), len(prog.Branches), count(closed.OriginalInstrs))

	fmt.Printf("%-26s %14s %14s\n", "", "closed-loop", "open-loop")
	row := func(name, a, b string) { fmt.Printf("%-26s %14s %14s\n", name, a, b) }
	row("speedup vs superscalar",
		fmt.Sprintf("%.3f", closed.Speedup()), fmt.Sprintf("%.3f", open.Speedup()))
	row("tasks dispatched", count(closed.Tasks), count(open.Tasks))
	row("task misspeculations", count(closed.TaskMisspecs), count(open.TaskMisspecs))
	row("distilled instructions", count(closed.DistilledInstrs), count(open.DistilledInstrs))
	row("re-optimizations", count(closed.Reopts), count(open.Reopts))
	row("controller evictions",
		count(closed.ControllerStats.Evictions), count(open.ControllerStats.Evictions))

	fmt.Println()
	ratio := closed.Speedup() / open.Speedup()
	fmt.Printf("distillation removed %.0f%% of the master's dynamic instructions.\n",
		100*(1-float64(closed.DistilledInstrs)/float64(closed.OriginalInstrs)))
	fmt.Printf("the eviction arc is worth %.0f%% of MSSP performance on this program —\n",
		100*(ratio-1))
	fmt.Println("without it, every mid-run behavior change keeps squashing tasks forever.")
}

func count(n uint64) string {
	s := fmt.Sprintf("%d", n)
	out := ""
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			out += ","
		}
		out += string(c)
	}
	return out
}
