// Phase detection: watch the controller track time-varying branches inside a
// full synthetic benchmark.
//
// This runs the calibrated "gap" workload (the benchmark whose changing
// branches the paper plots in Figure 3), overlays the reactive
// controller's per-branch classification on the branches' true behavior, and
// prints a timeline for every branch that was ever evicted.
//
// Run with: go run ./examples/phasedetect
package main

import (
	"fmt"
	"sort"
	"strings"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

const timelineCols = 64

func main() {
	spec := workload.MustBuild("gap", workload.InputEval, workload.Options{})
	params := core.DefaultParams().Scaled(10).WithWaitPeriod(20_000)
	ctl := core.New(params)

	// Record classification intervals per branch, in event time.
	type interval struct{ from, to uint64 }
	specIntervals := make(map[trace.BranchID][]interval)
	var eventIdx uint64
	ctl.OnTransition = func(tr core.Transition) {
		iv := specIntervals[tr.Branch]
		if tr.To == core.Biased {
			specIntervals[tr.Branch] = append(iv, interval{from: eventIdx, to: ^uint64(0)})
		} else if tr.From == core.Biased && len(iv) > 0 {
			iv[len(iv)-1].to = eventIdx
			specIntervals[tr.Branch] = iv
		}
	}

	gen := workload.NewGenerator(spec)
	st := harness.RunObserved(gen, ctl, func(trace.Event, uint64, core.Verdict) {
		eventIdx++
	})

	// Report every branch the controller ever evicted.
	var evicted []trace.BranchID
	for id := range specIntervals {
		if ctl.Evictions(id) > 0 {
			evicted = append(evicted, id)
		}
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })

	fmt.Printf("gap, %s events: %d branches were evicted at least once\n\n",
		fmtCount(st.Events), len(evicted))
	fmt.Printf("%-7s %-11s %-5s %-6s  %s\n", "branch", "class", "opts", "evicts",
		"speculated intervals (run time →)")
	for _, id := range evicted {
		line := make([]byte, timelineCols)
		for i := range line {
			line[i] = '.'
		}
		for _, iv := range specIntervals[id] {
			to := iv.to
			if to == ^uint64(0) {
				to = st.Events
			}
			from := int(iv.from * timelineCols / st.Events)
			end := int(to * timelineCols / st.Events)
			for c := from; c <= end && c < timelineCols; c++ {
				line[c] = '#'
			}
		}
		fmt.Printf("%-7d %-11s %-5d %-6d  %s\n",
			id, spec.Branches[id].Class, ctl.Optimizations(id), ctl.Evictions(id), line)
	}

	fmt.Println()
	fmt.Printf("overall: %.1f%% of dynamic branches correctly speculated, "+
		"%.3f%% misspeculated (one per %.0f instructions)\n",
		100*st.CorrectFrac(), 100*st.MisspecFrac(), st.MisspecDistance())
}

func fmtCount(n uint64) string {
	s := fmt.Sprintf("%d", n)
	var b strings.Builder
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(c)
	}
	return b.String()
}
