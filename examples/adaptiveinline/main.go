// Adaptive inlining: the reactive controller driving a toy JIT.
//
// The paper's controller is not branch-specific: any repeated binary program
// behavior with a "speculate / don't" decision and a recompilation latency
// fits the model. This example applies it to speculative inlining of virtual
// call sites — the classic JIT deoptimization problem.
//
// Each call site observes a stream of receiver types. Speculating means
// inlining the dominant receiver's method (and the outcome is "did the
// receiver match?"); eviction means deoptimizing and recompiling, which takes
// time. Site A is monomorphic, site B is megamorphic, and site C changes its
// dominant receiver mid-run (a loaded plugin replacing an implementation).
//
// Run with: go run ./examples/adaptiveinline
package main

import (
	"fmt"

	"reactivespec/internal/behavior"
	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// callSite models a virtual call site dispatching over receiver types.
// The controller's binary outcome is "receiver == the site's primary type".
type callSite struct {
	id      trace.BranchID
	name    string
	pattern behavior.Model // true = primary receiver observed
	calls   uint64
}

func main() {
	sites := []*callSite{
		{id: 0, name: "A (monomorphic)", pattern: behavior.Bernoulli{Seed: 1, PTaken: 0.9999}},
		{id: 1, name: "B (megamorphic)", pattern: behavior.Bernoulli{Seed: 2, PTaken: 0.55}},
		{id: 2, name: "C (plugin swap)", pattern: behavior.Segments{Seed: 3, Segs: []behavior.Segment{
			{Len: 40_000, PTaken: 0.9995}, // primary implementation …
			{PTaken: 0.0005},              // … replaced by a plugin
		}}},
	}

	// Recompilation (inlining or deoptimizing) takes ~50k instructions of
	// background compiler work; the controller tolerates that latency.
	params := core.DefaultParams().Scaled(10).WithOptLatency(50_000)
	ctl := core.New(params)
	ctl.OnTransition = func(tr core.Transition) {
		site := sites[tr.Branch]
		switch {
		case tr.To == core.Biased:
			fmt.Printf("  [jit] call %9d: inline %s speculatively\n", site.calls, site.name)
		case tr.From == core.Biased:
			fmt.Printf("  [jit] call %9d: DEOPTIMIZE %s (guard failing)\n", site.calls, site.name)
		case tr.To == core.Retired:
			fmt.Printf("  [jit] call %9d: give up on %s permanently\n", site.calls, site.name)
		}
	}

	fmt.Println("JIT decisions:")
	var instr uint64
	inlined := make([]uint64, len(sites)) // calls executed through inlined code
	guards := make([]uint64, len(sites))  // inlined-guard failures
	for round := 0; round < 100_000; round++ {
		for _, s := range sites {
			match := s.pattern.Outcome(s.calls)
			s.calls++
			instr += 20 // ~20 instructions per call
			ctl.AddInstrs(20)
			switch ctl.OnBranch(s.id, match, instr) {
			case core.Correct:
				inlined[s.id]++
			case core.Misspec:
				guards[s.id]++
			}
		}
	}

	fmt.Println()
	fmt.Printf("%-18s %12s %12s %14s %10s\n", "site", "calls", "inlined", "guard fails", "state")
	for _, s := range sites {
		fmt.Printf("%-18s %12d %12d %14d %10s\n",
			s.name, s.calls, inlined[s.id], guards[s.id], ctl.BranchState(s.id))
	}
	fmt.Println()
	fmt.Println("A stays inlined for its whole life; B is never inlined (the monitor")
	fmt.Println("rejects it); C is inlined, deoptimized when the plugin replaces the")
	fmt.Println("implementation, then re-inlined against the new receiver — at a")
	fmt.Println("guard-failure rate a non-reactive JIT could not guarantee.")
}
