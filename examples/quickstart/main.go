// Quickstart: drive the reactive speculation controller by hand.
//
// A single synthetic branch is 99.99% not-taken for its first 60,000
// executions, then reverses completely. Watch the controller monitor it,
// select it for speculation, ride out the reversal via the eviction arc, and
// re-select it in the new direction — the Figure 4(b) lifecycle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"reactivespec/internal/behavior"
	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

func main() {
	// The branch under observation.
	branch := behavior.Segments{
		Seed: 1,
		Segs: []behavior.Segment{
			{Len: 60_000, PTaken: 0.0001}, // strongly not-taken …
			{PTaken: 0.9999},              // … then reverses
		},
	}

	// A controller with the paper's Table 2 parameters, scaled 10× down
	// to match this example's short run (the paper's own short-run
	// regime, Section 4.2). The optimization latency is 3,000
	// instructions — in a real workload this branch would be a tiny
	// fraction of the instruction stream, but here it is the whole
	// program, so a full-scale latency window would dominate the stats.
	params := core.DefaultParams().Scaled(10).WithOptLatency(3_000)
	ctl := core.New(params)
	ctl.OnTransition = func(tr core.Transition) {
		fmt.Printf("  exec %7d: %s -> %s\n", tr.Exec, tr.From, tr.To)
	}

	fmt.Println("controller transitions:")
	const id = trace.BranchID(0)
	var instr uint64
	var correct, misspec, notspec uint64
	for n := uint64(0); n < 120_000; n++ {
		instr += 6 // ~6 instructions per branch, as in SPECint
		ctl.AddInstrs(6)
		switch ctl.OnBranch(id, branch.Outcome(n), instr) {
		case core.Correct:
			correct++
		case core.Misspec:
			misspec++
		default:
			notspec++
		}
	}

	st := ctl.Stats()
	fmt.Println()
	fmt.Printf("executions:            %d\n", st.Events)
	fmt.Printf("correct speculations:  %d (%.1f%%)\n", correct, 100*st.CorrectFrac())
	fmt.Printf("misspeculations:       %d (%.3f%%)\n", misspec, 100*st.MisspecFrac())
	fmt.Printf("not speculated:        %d\n", notspec)
	fmt.Printf("selections/evictions:  %d/%d\n", st.Selections, st.Evictions)
	fmt.Printf("misspec distance:      one per %.0f instructions\n", st.MisspecDistance())
	fmt.Println()
	fmt.Println("Despite a complete mid-run reversal, the misspeculation rate stays")
	fmt.Println("below 1% — the reactive eviction arc caught the change, and the")
	fmt.Println("re-monitor path re-selected the branch in its new direction.")
}
