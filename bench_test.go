// Benchmarks regenerating the paper's tables and figures, one per artifact,
// at a reduced scale suitable for `go test -bench`. Full-scale regeneration
// is the CLI's job:
//
//	go run ./cmd/reactivespec all
//
// Micro-benchmarks for the hot substrates (controller, workload generator,
// predictor, cache, MSSP machine) follow the per-figure benchmarks.
package reactivespec_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"reactivespec/internal/bpred"
	"reactivespec/internal/cache"
	"reactivespec/internal/core"
	"reactivespec/internal/experiments"
	"reactivespec/internal/harness"
	"reactivespec/internal/mssp"
	"reactivespec/internal/program"
	"reactivespec/internal/replay"
	"reactivespec/internal/server"
	"reactivespec/internal/tlspec"
	"reactivespec/internal/trace"
	"reactivespec/internal/values"
	"reactivespec/internal/workload"
)

// benchCfg is the reduced-scale configuration shared by the per-figure
// benchmarks: 1/20 of the calibrated workload with matching parameters.
func benchCfg(benches ...string) experiments.Config {
	return experiments.Config{Scale: 0.05, ParamScale: 50, Benchmarks: benches}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable1(io.Discard, benchCfg(), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	cfg := benchCfg("gzip", "mcf")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Baseline(b *testing.B) {
	benchControllerConfig(b, "baseline")
}

func BenchmarkFig5NoEviction(b *testing.B) {
	benchControllerConfig(b, "no-evict")
}

func BenchmarkFig5NoRevisit(b *testing.B) {
	benchControllerConfig(b, "no-revisit")
}

func BenchmarkFig5EvictBySampling(b *testing.B) {
	benchControllerConfig(b, "evict-by-sampling")
}

// benchControllerConfig runs one Figure 5 / Table 4 controller configuration
// over one reduced-scale benchmark.
func benchControllerConfig(b *testing.B, name string) {
	cfg := benchCfg("gzip")
	base := cfg.Params()
	spec := workload.MustBuild("gzip", workload.InputEval, workload.Options{
		EventScale: workload.DefaultEventScale * 0.05,
	})
	params := base
	switch name {
	case "no-evict":
		params = base.WithNoEviction()
	case "no-revisit":
		params = base.WithNoRevisit()
	case "evict-by-sampling":
		params = base.WithSamplingEviction()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := harness.Run(workload.NewGenerator(spec), core.New(params))
		if st.Events == 0 {
			b.Fatal("no events")
		}
	}
	b.ReportMetric(float64(spec.Events), "events/op")
}

func BenchmarkTable3(b *testing.B) {
	cfg := benchCfg("eon", "gzip")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	cfg := benchCfg("gzip")
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Table4(points)
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := benchCfg("gap")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ClosedVsOpen(b *testing.B) {
	cfg := experiments.Config{Scale: 0.1, Benchmarks: []string{"crafty"}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8LatencySweep(b *testing.B) {
	cfg := experiments.Config{Scale: 0.1, Benchmarks: []string{"bzip2"}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	cfg := experiments.Config{Scale: 0.1, Benchmarks: []string{"vortex"}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkController measures the reactive controller's per-event cost on a
// mixed stream (the figure every functional experiment's runtime reduces to).
func BenchmarkController(b *testing.B) {
	params := core.DefaultParams().Scaled(10)
	ctl := core.New(params)
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := trace.BranchID(i & 63)
		instr += 6
		ctl.OnBranch(id, (i*2654435761)&7 < 3, instr)
	}
}

// BenchmarkWorkloadGenerator measures raw event-generation throughput.
func BenchmarkWorkloadGenerator(b *testing.B) {
	spec := workload.MustBuild("gcc", workload.InputEval, workload.Options{})
	gen := workload.NewGenerator(spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := gen.Next(); !ok {
			gen.Reset()
		}
	}
}

// BenchmarkEndToEndFunctional measures the full per-event pipeline
// (generation + controller + accounting).
func BenchmarkEndToEndFunctional(b *testing.B) {
	spec := workload.MustBuild("gzip", workload.InputEval, workload.Options{})
	gen := workload.NewGenerator(spec)
	ctl := core.New(core.DefaultParams().Scaled(10))
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, ok := gen.Next()
		if !ok {
			gen.Reset()
			ev, _ = gen.Next()
		}
		instr += uint64(ev.Gap)
		ctl.OnBranch(ev.Branch, ev.Taken, instr)
	}
}

func BenchmarkGshare(b *testing.B) {
	g := bpred.NewGshare(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(uint64(i&1023)<<2, i&5 == 0)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	shared := cache.NewShared()
	h := cache.NewHierarchy(0, cache.LeadingL1, shared)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*64)%(8<<20), i&7 == 0)
	}
}

// BenchmarkMSSPMachine measures whole-machine simulation throughput
// (instructions simulated per op reported as a metric).
func BenchmarkMSSPMachine(b *testing.B) {
	o := program.DefaultSynthOptions()
	o.Regions = 16
	o.RunInstrs = 1_000_000
	prog, err := program.Synthesize("bench", o)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mssp.DefaultConfig()
	cfg.RunInstrs = o.RunInstrs
	params := core.DefaultParams().Scaled(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mssp.Run(prog, core.New(params), cfg)
		if res.Tasks == 0 {
			b.Fatal("no tasks")
		}
	}
	b.ReportMetric(float64(o.RunInstrs), "instrs/op")
}

// BenchmarkReplayEngine measures the rePLay frame engine's simulation
// throughput.
func BenchmarkReplayEngine(b *testing.B) {
	o := program.DefaultSynthOptions()
	o.Regions = 12
	o.RunInstrs = 500_000
	prog, err := program.Synthesize("bench-replay", o)
	if err != nil {
		b.Fatal(err)
	}
	rcfg := replay.DefaultConfig()
	rcfg.RunInstrs = o.RunInstrs
	params := core.DefaultParams().Scaled(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := replay.Run(prog, core.New(params), rcfg)
		if res.Frames == 0 {
			b.Fatal("no frames")
		}
	}
	b.ReportMetric(float64(o.RunInstrs), "instrs/op")
}

// BenchmarkTLSMachine measures the thread-level-speculation machine.
func BenchmarkTLSMachine(b *testing.B) {
	params := core.DefaultParams().Scaled(50)
	params.MonitorPeriod = 200
	params.OptLatency = 2_000
	params.WaitPeriod = 2_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tlspec.Run(tlspec.SynthSuite(0, 0.1), core.New(params), tlspec.DefaultConfig())
		if res.ParallelIters == 0 {
			b.Fatal("nothing parallelized")
		}
	}
}

// BenchmarkValueController measures the value-speculation controller.
func BenchmarkValueController(b *testing.B) {
	ctl := values.New(core.DefaultParams().Scaled(10))
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instr += 5
		ctl.AddInstrs(5)
		ctl.OnLoad(i&31, uint32(i&3), instr)
	}
}

// --- Sharded controller-table benchmarks (the reactived substrate) ---

// serialTable is the unsharded baseline the lock-striped table replaces: a
// single mutex in front of a single controller map. Same decision semantics,
// no concurrency.
type serialTable struct {
	mu      sync.Mutex
	params  core.Params
	entries map[serialKey]*core.Controller
}

type serialKey struct {
	program string
	branch  trace.BranchID
}

func newSerialTable(params core.Params) *serialTable {
	return &serialTable{params: params, entries: make(map[serialKey]*core.Controller)}
}

func (t *serialTable) Apply(program string, ev trace.Event, instr uint64) core.Verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := serialKey{program, ev.Branch}
	ctl := t.entries[k]
	if ctl == nil {
		ctl = core.New(t.params)
		t.entries[k] = ctl
	}
	ctl.AddInstrs(uint64(ev.Gap))
	return ctl.OnBranch(0, ev.Taken, instr)
}

func (t *serialTable) Decide(program string, id trace.BranchID) core.State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ctl := t.entries[serialKey{program, id}]; ctl != nil {
		return ctl.BranchState(0)
	}
	return core.Monitor
}

// benchTableEvents pre-generates a deterministic mixed stream over nbranch
// branches so every table benchmark applies identical work.
func benchTableEvents(n, nbranch int) []trace.Event {
	evs := make([]trace.Event, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range evs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		evs[i] = trace.Event{
			Branch: trace.BranchID(x) % trace.BranchID(nbranch),
			Taken:  x>>32&7 < 3,
			Gap:    uint32(4 + x>>56&7),
		}
	}
	return evs
}

// benchTableParallel drives apply/decide from GOMAXPROCS goroutines. The
// write fraction selects the mix: 1.0 is pure ingest (write-heavy), 0.05 is
// the lookup-dominated serving path (read-heavy).
func benchTableParallel(b *testing.B, apply func(string, trace.Event, uint64),
	decide func(string, trace.BranchID), writeFrac float64) {
	const nbranch = 256
	evs := benchTableEvents(1<<14, nbranch)
	writeEvery := int(1 / writeFrac)
	var worker atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		program := fmt.Sprintf("bench@%d", worker.Add(1))
		var instr uint64
		i := 0
		for pb.Next() {
			ev := evs[i&(len(evs)-1)]
			if writeFrac >= 1 || i%writeEvery == 0 {
				instr += uint64(ev.Gap)
				apply(program, ev, instr)
			} else {
				decide(program, ev.Branch)
			}
			i++
		}
	})
}

// benchShardedTable benchmarks the lock-striped table at a given stripe
// count; compare against BenchmarkTableBaseline* for the striping win.
func benchShardedTable(b *testing.B, shards int, writeFrac float64) {
	t := server.NewTable(core.DefaultParams().Scaled(10), shards)
	benchTableParallel(b,
		func(p string, ev trace.Event, instr uint64) { t.Apply(p, ev, instr) },
		func(p string, id trace.BranchID) { t.Decide(p, id) },
		writeFrac)
}

func BenchmarkTableWriteHeavy(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedTable(b, shards, 1.0)
		})
	}
}

func BenchmarkTableReadHeavy(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedTable(b, shards, 0.05)
		})
	}
}

func BenchmarkTableBaselineWriteHeavy(b *testing.B) {
	t := newSerialTable(core.DefaultParams().Scaled(10))
	benchTableParallel(b,
		func(p string, ev trace.Event, instr uint64) { t.Apply(p, ev, instr) },
		func(p string, id trace.BranchID) { t.Decide(p, id) },
		1.0)
}

func BenchmarkTableBaselineReadHeavy(b *testing.B) {
	t := newSerialTable(core.DefaultParams().Scaled(10))
	benchTableParallel(b,
		func(p string, ev trace.Event, instr uint64) { t.Apply(p, ev, instr) },
		func(p string, id trace.BranchID) { t.Decide(p, id) },
		0.05)
}

// BenchmarkTraceCodec measures trace encode+decode throughput.
func BenchmarkTraceCodec(b *testing.B) {
	spec := workload.MustBuild("eon", workload.InputEval, workload.Options{
		EventScale: workload.DefaultEventScale * 0.01,
	})
	events := trace.Collect(workload.NewGenerator(spec))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := trace.Capture(&buf, trace.NewSliceStream(events), uint64(len(events))); err != nil {
			b.Fatal(err)
		}
		r, err := trace.NewReader(&buf)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
		}
		if n != len(events) {
			b.Fatalf("decoded %d of %d", n, len(events))
		}
	}
	b.ReportMetric(float64(len(events)), "events/op")
}
