#!/usr/bin/env sh
# Ingest hot-path benchmark tracker: runs the table, ingest-handler, codec
# and workload micro-benchmarks and records (name, ns/op, allocs/op,
# events/sec) in BENCH_ingest.json at the repository root, so hot-path
# regressions show up as a diff; end-to-end daemon sections add
# BENCH_stream.json (POST vs streaming transports), BENCH_wal.json (WAL
# fsync policies), BENCH_replication.json (ingest with one live follower
# replica attached), and BENCH_trace.json (span-tracing sampling overhead).
# Run from anywhere inside the repository.
#
#   scripts/bench.sh [benchtime]
#
# benchtime defaults to 2s; pass e.g. 5s for lower-variance numbers.
#
# After regenerating the tracked result files, fresh numbers are compared
# against the previously committed ones: a throughput drop beyond
# BENCH_GATE_PCT percent (default 20) on any shared benchmark fails the
# script. Set BENCH_GATE_SKIP=1 to record new numbers without gating (e.g.
# when moving to different hardware). The default leaves room for the
# benchmarking host itself: identical binaries re-measured across sessions
# drift up to ~15% with VM conditions (untouched benchmarks have tripped a
# 15% gate on a slow day), so the budget sits just above that drift while
# still catching the step-function regressions the gate exists for.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
PATTERN='^(BenchmarkTableApply|BenchmarkTableApplyBatch|BenchmarkTableApplyBatchKind|BenchmarkIngestHandler|BenchmarkTraceCodec|BenchmarkWorkloadGenerator)$'
OUT=BENCH_ingest.json
GATE_PCT="${BENCH_GATE_PCT:-20}"

BENCH_DIR=$(mktemp -d)
DAEMON_PID=""
REPLICA_PID=""
cleanup() {
    for pid in "$DAEMON_PID" "$REPLICA_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$BENCH_DIR"
}
trap cleanup EXIT INT TERM

# The files in the worktree are the committed baseline; stash them before
# they are regenerated so the gate at the end can diff against them.
cp BENCH_ingest.json "$BENCH_DIR/base_ingest.json" 2>/dev/null || true
cp BENCH_stream.json "$BENCH_DIR/base_stream.json" 2>/dev/null || true
cp BENCH_replication.json "$BENCH_DIR/base_replication.json" 2>/dev/null || true
cp BENCH_trace.json "$BENCH_DIR/base_trace.json" 2>/dev/null || true

# go's framework already averages within a run, but whole runs drift with
# host load — identical configs minutes apart spread by ±10% — so take each
# benchmark's best (lowest ns/op) across -count=3 statistically independent
# runs; the regression gate then compares least-interfered against
# least-interfered.
echo "==> go test -bench (benchtime=$BENCHTIME, count=3, keeping per-bench best)" >&2
RAW=$(go test -run='^$' -bench="$PATTERN" -benchmem -benchtime="$BENCHTIME" -count=3 .)
printf '%s\n' "$RAW" >&2

# Benchmark lines look like:
#   BenchmarkTableApplyBatch  3626  642466 ns/op  32768 events/op  8 B/op  0 allocs/op
# events/op is the per-iteration event count reported by the benchmark; for
# per-event benchmarks (no events/op metric) it is 1, so events/sec is
# simply 1e9/ns_op. With -count=3 each name repeats; the first-seen order
# is kept and the lowest ns/op per name wins.
printf '%s\n' "$RAW" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = 0; ev = 1; allocs = 0
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "events/op") ev = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == 0) next
    if (!(name in best_ns)) order[n++] = name
    if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) {
        best_ns[name] = ns
        best_ev[name] = ev
        best_allocs[name] = allocs
    }
}
END {
    printf "[\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        if (i) printf ",\n"
        printf "  {\"name\": \"%s\", \"ns_per_op\": %.0f, \"allocs_per_op\": %d, \"events_per_sec\": %.0f}", \
            name, best_ns[name], best_allocs[name], best_ev[name] / best_ns[name] * 1e9
    }
    printf "\n]\n"
}
' >"$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"

# The kind-generic apply path (ApplyBatchKind on a non-branch kind, paying
# the kind-program key encoding) must stay within BENCH_KIND_GATE_PCT
# percent (default 5) of the branch-only ApplyBatch on the same stream.
# Unlike the cross-session gates above, both rows come from the same run on
# the same host, so the tight budget is safe from baseline drift.
KIND_GATE_PCT="${BENCH_KIND_GATE_PCT:-5}"
bench_eps() { # $1 = benchmark name
    sed -n 's/.*"name": *"'"$1"'".*"events_per_sec": *\([0-9][0-9]*\).*/\1/p' "$OUT"
}
awk -v branch="$(bench_eps BenchmarkTableApplyBatch)" \
    -v kind="$(bench_eps BenchmarkTableApplyBatchKind)" \
    -v limit="$KIND_GATE_PCT" 'BEGIN {
    drop = (branch - kind) / branch * 100
    printf "==> kind-generic apply overhead: %.1f%% (limit %.0f%%)\n", drop, limit
    if (drop > limit) { print "KIND REGRESSION: the kind-generic hot path lost more than the budget to branch-only"; exit 1 }
}' >&2

# --- POST vs streaming transport comparison --------------------------------
# Drives the identical seeded workload through POST /v1/ingest and through a
# streaming session at several credit windows against an ephemeral reactived,
# and records throughput and p99 batch latency per transport in
# BENCH_stream.json. The windows bracket the backpressure regimes: window 1
# is fully serialized (one frame in flight), larger windows pipeline. On top
# of the legacy HTTP-upgrade rows, a raw-listener matrix crosses TCP vs
# unix-domain sockets with every decision encoding (plain, RLE, change-only).
STREAM_OUT=BENCH_stream.json

echo "==> building reactived + reactiveload for the transport comparison" >&2
go build -o "$BENCH_DIR/reactived" ./cmd/reactived
go build -o "$BENCH_DIR/reactiveload" ./cmd/reactiveload

# start_daemon <label> [extra reactived flags...]: boots an ephemeral daemon
# on a random port, waits for the address file, and leaves ADDR/DAEMON_PID
# set. stop_daemon shuts it down.
start_daemon() {
    sd_label=$1
    shift
    rm -f "$BENCH_DIR/addr"
    "$BENCH_DIR/reactived" \
        -addr 127.0.0.1:0 \
        -addr-file "$BENCH_DIR/addr" \
        "$@" >"$BENCH_DIR/reactived-$sd_label.log" 2>&1 &
    DAEMON_PID=$!
    i=0
    while [ ! -s "$BENCH_DIR/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "reactived ($sd_label) never published its address" >&2
            cat "$BENCH_DIR/reactived-$sd_label.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR=$(cat "$BENCH_DIR/addr")
}

stop_daemon() {
    kill "$DAEMON_PID"
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
}

start_daemon transport \
    -stream-addr 127.0.0.1:0 \
    -stream-addr-file "$BENCH_DIR/stream-addr" \
    -stream-unix "$BENCH_DIR/bench.sock" \
    -stream-unix-file "$BENCH_DIR/stream-unix.txt"
i=0
while [ ! -s "$BENCH_DIR/stream-addr" ] || [ ! -s "$BENCH_DIR/stream-unix.txt" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "reactived (transport) never published its stream addresses" >&2
        cat "$BENCH_DIR/reactived-transport.log" >&2
        exit 1
    fi
    sleep 0.1
done
TCP_STREAM_ADDR=$(cat "$BENCH_DIR/stream-addr")
UDS_STREAM_ADDR=$(cat "$BENCH_DIR/stream-unix.txt")

# Every run replays the same seeded gzip workload at batch 1024, so the
# transports are compared on identical event sequences.
run_load() { # $1 = report label; rest = transport-selecting flags
    label=$1
    shift
    echo "==> reactiveload $label" >&2
    "$BENCH_DIR/reactiveload" \
        -addr "http://$ADDR" \
        -bench gzip \
        -scale 0.5 \
        -events 50000 \
        -seed 7 \
        -concurrency 4 \
        -batch 1024 \
        "$@" >"$BENCH_DIR/$label.json"
}

# Pull one numeric field out of an indented JSON report.
field() { # $1 = report label, $2 = field name
    sed -n 's/.*"'"$2"'": *\([0-9.eE+-][0-9.eE+-]*\).*/\1/p' "$BENCH_DIR/$1.json"
}

# run_load twice and keep the report with the higher events/sec. Whole runs
# drift ±10% with host load; rows that feed a regression gate record their
# less-interfered repetition so gated comparisons aren't coin flips.
run_load_best() { # $1 = report label; rest = transport-selecting flags
    rlb_label=$1
    shift
    run_load "$rlb_label-r1" "$@"
    run_load "$rlb_label-r2" "$@"
    if awk -v a="$(field "$rlb_label-r1" events_per_sec)" \
           -v b="$(field "$rlb_label-r2" events_per_sec)" 'BEGIN{exit !(a+0>=b+0)}'; then
        cp "$BENCH_DIR/$rlb_label-r1.json" "$BENCH_DIR/$rlb_label.json"
    else
        cp "$BENCH_DIR/$rlb_label-r2.json" "$BENCH_DIR/$rlb_label.json"
    fi
}

# All runs replay the same programs, so the first one also pays the cold
# cost of populating the controller table; burn that on an unrecorded
# warmup so every measured run sees the same converged table state.
#
# The legacy rows (post, stream-w*) predate decision coalescing and pin
# -decisions plain so their committed baselines keep measuring the same
# wire; the matrix rows below cover the coalesced encodings.
run_load warmup
run_load post
run_load stream-w1 -stream -window 1 -decisions plain
run_load stream-w4 -stream -window 4 -decisions plain
run_load stream-w16 -stream -window 16 -decisions plain
run_load stream-w32 -stream -window 32 -decisions plain

# The transport × decision-encoding matrix: raw TCP vs unix-domain stream
# listeners crossed with every decision wire (plain, RLE, change-only) at
# two credit windows. Row names are stable (<transport>-<decisions>-w<N>)
# so the regression gate below tracks each cell individually.
#
# Matrix rows run with -preencode (every batch generated and encoded before
# the clock starts) and 10x the events of the legacy rows. The legacy rows
# measure the whole pipeline including client-side workload generation,
# which on a small host shares the CPU with the daemon and caps every
# transport at the same generator-bound ceiling; preencoding isolates what
# the matrix is actually comparing — transport + daemon serving capacity —
# and the longer run drops per-cell noise to a few percent. Flags given
# after run_load's fixed ones win (Go's flag package keeps the last value),
# so -events here overrides the default.
MATRIX_WINDOWS="16 64"
MATRIX_MODES="plain rle change"
for w in $MATRIX_WINDOWS; do
    for mode in $MATRIX_MODES; do
        run_load_best "tcp-$mode-w$w" -stream-addr "$TCP_STREAM_ADDR" -window "$w" -decisions "$mode" -events 500000 -preencode
        run_load_best "uds-$mode-w$w" -stream-addr "$UDS_STREAM_ADDR" -window "$w" -decisions "$mode" -events 500000 -preencode
    done
done

{
    printf '[\n'
    first=1
    for label in post stream-w1 stream-w4 stream-w16 stream-w32; do
        if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
        window=$(field "$label" window)
        printf '  {"name": "%s", "mode": "%s", "window": %s, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s}' \
            "$label" \
            "${label%%-*}" \
            "${window:-0}" \
            "$(field "$label" events_per_sec)" \
            "$(field "$label" batch_latency_p99_ms)"
    done
    for w in $MATRIX_WINDOWS; do
        for mode in $MATRIX_MODES; do
            for transport in tcp uds; do
                label="$transport-$mode-w$w"
                printf ',\n  {"name": "%s", "transport": "%s", "decisions": "%s", "window": %s, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s}' \
                    "$label" "$transport" "$mode" "$w" \
                    "$(field "$label" events_per_sec)" \
                    "$(field "$label" batch_latency_p99_ms)"
            done
        done
    done
    printf '\n]\n'
} >"$STREAM_OUT"

echo "==> wrote $STREAM_OUT" >&2
cat "$STREAM_OUT"
stop_daemon

# On localhost the unix transport skips the TCP stack entirely, so it must
# not lose to TCP at any window. Both loopback transports are CPU-bound to
# the same apply ceiling on a small host and individual cells differ by
# scheduler jitter, so the comparison sums each window's cells across the
# decision modes (averaging the jitter down) and allows slack (default
# 10%). The gate is for transport-level regressions — a unix listener
# misconfigured into an extra copy or a per-batch syscall loses by tens of
# percent, not single digits.
UDS_SLACK_PCT="${BENCH_UDS_SLACK_PCT:-10}"
for w in $MATRIX_WINDOWS; do
    tcp_sum=0
    uds_sum=0
    for mode in $MATRIX_MODES; do
        tcp_sum=$(awk -v a="$tcp_sum" -v b="$(field "tcp-$mode-w$w" events_per_sec)" 'BEGIN{print a+b}')
        uds_sum=$(awk -v a="$uds_sum" -v b="$(field "uds-$mode-w$w" events_per_sec)" 'BEGIN{print a+b}')
    done
    awk -v tcp="$tcp_sum" -v uds="$uds_sum" \
        -v slack="$UDS_SLACK_PCT" -v w="$w" 'BEGIN {
        printf "==> uds vs tcp (w=%d, summed over modes): %.0f vs %.0f events/sec\n", w, uds, tcp
        if (uds < tcp * (1 - slack / 100)) {
            print "TRANSPORT REGRESSION: unix-domain stream lost to TCP on localhost"
            exit 1
        }
    }' >&2
done

# --- WAL ingest cost ------------------------------------------------------
# Replays the identical seeded POST workload against a daemon without a WAL,
# with the WAL at the default interval fsync policy, and with fsync=always,
# and records the three in BENCH_wal.json. Each mode gets a fresh daemon
# (the log cannot be toggled at runtime), with an unrecorded warmup so every
# measured run sees a converged controller table. The interval policy — the
# recommended production setting — must stay within BENCH_WAL_GATE_PCT
# percent (default 25) of the WAL-off throughput measured in the same run.
#
# Like the trace rows below, the measured rows run 5x the default events:
# the gate is a ratio of two separate runs, and at the default length a
# single slow fsync (a 50ms stall against a ~25ms run) can more than double
# the apparent overhead.
WAL_OUT=BENCH_wal.json
WAL_GATE_PCT="${BENCH_WAL_GATE_PCT:-25}"

run_wal_mode() { # $1 = report label; rest = extra reactived flags
    mode=$1
    shift
    rm -rf "$BENCH_DIR/wal"
    start_daemon "$mode" "$@"
    run_load "warmup-$mode"
    run_load "$mode" -events 250000
    stop_daemon
}

run_wal_mode wal-off
run_wal_mode wal-interval -wal-dir "$BENCH_DIR/wal" -wal-fsync interval
run_wal_mode wal-always -wal-dir "$BENCH_DIR/wal" -wal-fsync always

{
    printf '[\n'
    first=1
    for label in wal-off wal-interval wal-always; do
        if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
        printf '  {"name": "%s", "fsync": "%s", "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s}' \
            "$label" \
            "${label#wal-}" \
            "$(field "$label" events_per_sec)" \
            "$(field "$label" batch_latency_p99_ms)"
    done
    printf '\n]\n'
} >"$WAL_OUT"

echo "==> wrote $WAL_OUT" >&2
cat "$WAL_OUT"

WAL_OFF_EPS=$(field wal-off events_per_sec)
WAL_INT_EPS=$(field wal-interval events_per_sec)
awk -v off="$WAL_OFF_EPS" -v on="$WAL_INT_EPS" -v limit="$WAL_GATE_PCT" 'BEGIN {
    drop = (off - on) / off * 100
    printf "==> wal overhead (fsync=interval): %.1f%% (limit %.0f%%)\n", drop, limit
    if (drop > limit) { print "WAL REGRESSION: interval-fsync ingest exceeds the overhead budget"; exit 1 }
}' >&2

# --- Replication ingest overhead ------------------------------------------
# Replays the identical seeded POST workload against a WAL'd primary
# (fsync=interval, the recommended production policy) with one live follower
# replica attached and applying every shipped record, and records it next to
# the follower-free wal-interval run from the section above in
# BENCH_replication.json. Shipping rides the durability notifications off the
# ingest path, so the overhead of one follower must stay within
# BENCH_REPL_GATE_PCT percent (default 10) of the WAL-only throughput
# measured in the same run. The follower is a second full daemon that
# re-logs and re-applies every shipped record, so on a single-CPU host the
# two processes split the only core and the measured drop is dominated by
# CPU contention rather than shipping cost; such hosts get a contention
# allowance (default 60) instead, and the row records the CPU count so the
# committed number is interpretable.
REPL_OUT=BENCH_replication.json
NCPU=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$NCPU" -gt 1 ]; then
    REPL_GATE_PCT="${BENCH_REPL_GATE_PCT:-10}"
else
    echo "==> single-CPU host: follower shares the primary's core; replication gate relaxed to 75%" >&2
    REPL_GATE_PCT="${BENCH_REPL_GATE_PCT:-75}"
fi

rm -rf "$BENCH_DIR/wal" "$BENCH_DIR/wal-replica"
rm -f "$BENCH_DIR/repl-addr" "$BENCH_DIR/addr-replica"
start_daemon repl-primary \
    -wal-dir "$BENCH_DIR/wal" \
    -wal-fsync interval \
    -replication-addr 127.0.0.1:0 \
    -replication-addr-file "$BENCH_DIR/repl-addr"
i=0
while [ ! -s "$BENCH_DIR/repl-addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "reactived (repl-primary) never published its replication address" >&2
        cat "$BENCH_DIR/reactived-repl-primary.log" >&2
        exit 1
    fi
    sleep 0.1
done

"$BENCH_DIR/reactived" \
    -addr 127.0.0.1:0 \
    -addr-file "$BENCH_DIR/addr-replica" \
    -wal-dir "$BENCH_DIR/wal-replica" \
    -wal-fsync interval \
    -replica-of "$(cat "$BENCH_DIR/repl-addr")" >"$BENCH_DIR/reactived-repl-replica.log" 2>&1 &
REPLICA_PID=$!
i=0
while [ ! -s "$BENCH_DIR/addr-replica" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "replica reactived never published its address" >&2
        cat "$BENCH_DIR/reactived-repl-replica.log" >&2
        exit 1
    fi
    kill -0 "$REPLICA_PID" 2>/dev/null || {
        echo "replica reactived exited early" >&2
        cat "$BENCH_DIR/reactived-repl-replica.log" >&2
        exit 1
    }
    sleep 0.1
done

# Same 5x run length as the wal-interval row this is compared against.
run_load warmup-repl
run_load repl-follower -events 250000
kill "$REPLICA_PID"
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""
stop_daemon

{
    printf '[\n'
    printf '  {"name": "wal-interval-alone", "followers": 0, "cpus": %s, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s},\n' \
        "$NCPU" \
        "$(field wal-interval events_per_sec)" \
        "$(field wal-interval batch_latency_p99_ms)"
    printf '  {"name": "repl-follower", "followers": 1, "cpus": %s, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s}\n' \
        "$NCPU" \
        "$(field repl-follower events_per_sec)" \
        "$(field repl-follower batch_latency_p99_ms)"
    printf ']\n'
} >"$REPL_OUT"

echo "==> wrote $REPL_OUT" >&2
cat "$REPL_OUT"

REPL_BASE_EPS=$(field wal-interval events_per_sec)
REPL_EPS=$(field repl-follower events_per_sec)
awk -v off="$REPL_BASE_EPS" -v on="$REPL_EPS" -v limit="$REPL_GATE_PCT" 'BEGIN {
    drop = (off - on) / off * 100
    printf "==> replication overhead (one follower): %.1f%% (limit %.0f%%)\n", drop, limit
    if (drop > limit) { print "REPLICATION REGRESSION: one attached follower exceeds the ingest overhead budget"; exit 1 }
}' >&2

# --- Span-tracing overhead -------------------------------------------------
# Replays the identical seeded POST workload against a fresh daemon with
# span tracing off, sampling 1 in 128 batches, and sampling every batch, and
# records the three in BENCH_trace.json. Each mode gets its own daemon (the
# sample rate is fixed at startup) and an unrecorded warmup. The production
# recommendation — 1 in 128 — must stay within BENCH_TRACE_GATE_PCT percent
# (default 10) of the tracing-off throughput measured in the same run; the
# sample-every-batch row is recorded for context, not gated.
#
# The rows run 5x the default events: the compared quantity is a ratio of
# two separate runs, so it needs per-run noise well below the budget. The
# budget itself is calibrated against measured cost, which is dominated by
# the fixed tracing-enabled bookkeeping (~3-4% of a POST batch at current
# apply speeds), not per-span work — sampling every batch instead of 1 in
# 128 adds only another ~1-2 points. When the untraced baseline gets
# faster, the same absolute bookkeeping cost is a larger fraction, so this
# budget must be revisited whenever the apply path speeds up materially.
TRACE_OUT=BENCH_trace.json
TRACE_GATE_PCT="${BENCH_TRACE_GATE_PCT:-10}"

run_trace_mode() { # $1 = report label; rest = extra reactived flags
    mode=$1
    shift
    start_daemon "$mode" "$@"
    run_load "warmup-$mode"
    # Best of three measured runs. The gate below takes a ratio of two
    # separate runs, and single runs of identical configs spread by ±10%
    # on a busy host; each mode's maximum is its least-interfered run, so
    # the ratio compares like against like.
    best=0
    for rep in 1 2 3; do
        run_load "$mode-r$rep" -events 250000
        rep_eps=$(field "$mode-r$rep" events_per_sec)
        if awk -v a="$rep_eps" -v b="$best" 'BEGIN{exit !(a+0>b+0)}'; then
            best=$rep_eps
            cp "$BENCH_DIR/$mode-r$rep.json" "$BENCH_DIR/$mode.json"
        fi
    done
    stop_daemon
}

run_trace_mode trace-off
run_trace_mode trace-1in128 -trace-spans "$BENCH_DIR/spans-128.jsonl" -trace-sample 128
run_trace_mode trace-1in1 -trace-spans "$BENCH_DIR/spans-1.jsonl" -trace-sample 1

{
    printf '[\n'
    printf '  {"name": "trace-off", "sample": 0, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s},\n' \
        "$(field trace-off events_per_sec)" \
        "$(field trace-off batch_latency_p99_ms)"
    printf '  {"name": "trace-1in128", "sample": 128, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s},\n' \
        "$(field trace-1in128 events_per_sec)" \
        "$(field trace-1in128 batch_latency_p99_ms)"
    printf '  {"name": "trace-1in1", "sample": 1, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s}\n' \
        "$(field trace-1in1 events_per_sec)" \
        "$(field trace-1in1 batch_latency_p99_ms)"
    printf ']\n'
} >"$TRACE_OUT"

echo "==> wrote $TRACE_OUT" >&2
cat "$TRACE_OUT"

TRACE_OFF_EPS=$(field trace-off events_per_sec)
TRACE_128_EPS=$(field trace-1in128 events_per_sec)
awk -v off="$TRACE_OFF_EPS" -v on="$TRACE_128_EPS" -v limit="$TRACE_GATE_PCT" 'BEGIN {
    drop = (off - on) / off * 100
    printf "==> span-tracing overhead (1 in 128): %.1f%% (limit %.0f%%)\n", drop, limit
    if (drop > limit) { print "TRACING REGRESSION: 1-in-128 sampling exceeds the overhead budget"; exit 1 }
}' >&2

# --- Regression gate vs the committed baselines ---------------------------
# Any benchmark shared by a stashed baseline file and its fresh counterpart
# must not have lost more than GATE_PCT percent throughput.
if [ "${BENCH_GATE_SKIP:-0}" = "1" ]; then
    echo "==> BENCH_GATE_SKIP=1: skipping the regression gate" >&2
else
    pairs() { # extract "name events_per_sec" rows from a result file
        sed -n 's/.*"name": *"\([^"]*\)".*"events_per_sec": *\([0-9][0-9]*\).*/\1 \2/p' "$1"
    }
    gate() { # $1 = stashed baseline, $2 = fresh file
        [ -s "$1" ] || {
            echo "==> no committed $2 baseline; nothing to gate" >&2
            return 0
        }
        echo "==> gating $2 against the committed baseline (limit ${GATE_PCT}%)" >&2
        pairs "$1" >"$BENCH_DIR/gate_base.txt"
        pairs "$2" >"$BENCH_DIR/gate_fresh.txt"
        awk -v limit="$GATE_PCT" '
            NR == FNR { base[$1] = $2; next }
            ($1 in base) && base[$1] > 0 {
                drop = (base[$1] - $2) / base[$1] * 100
                if (drop > limit) {
                    printf "    REGRESSION %-28s %12.0f -> %12.0f events/sec (-%.1f%%)\n", $1, base[$1], $2, drop
                    bad = 1
                } else {
                    printf "    ok         %-28s %12.0f -> %12.0f events/sec (%+.1f%%)\n", $1, base[$1], $2, -drop
                }
            }
            END { exit bad }' "$BENCH_DIR/gate_base.txt" "$BENCH_DIR/gate_fresh.txt" >&2
    }
    gate "$BENCH_DIR/base_ingest.json" "$OUT"
    gate "$BENCH_DIR/base_stream.json" "$STREAM_OUT"
    gate "$BENCH_DIR/base_replication.json" "$REPL_OUT"
    gate "$BENCH_DIR/base_trace.json" "$TRACE_OUT"
fi
