#!/usr/bin/env sh
# Ingest hot-path benchmark tracker: runs the table, ingest-handler, codec
# and workload micro-benchmarks and records (name, ns/op, allocs/op,
# events/sec) in BENCH_ingest.json at the repository root, so hot-path
# regressions show up as a diff. Run from anywhere inside the repository.
#
#   scripts/bench.sh [benchtime]
#
# benchtime defaults to 2s; pass e.g. 5s for lower-variance numbers.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
PATTERN='^(BenchmarkTableApply|BenchmarkTableApplyBatch|BenchmarkIngestHandler|BenchmarkTraceCodec|BenchmarkWorkloadGenerator)$'
OUT=BENCH_ingest.json

echo "==> go test -bench (benchtime=$BENCHTIME)" >&2
RAW=$(go test -run='^$' -bench="$PATTERN" -benchmem -benchtime="$BENCHTIME" .)
printf '%s\n' "$RAW" >&2

# Benchmark lines look like:
#   BenchmarkTableApplyBatch  3626  642466 ns/op  32768 events/op  8 B/op  0 allocs/op
# events/op is the per-iteration event count reported by the benchmark; for
# per-event benchmarks (no events/op metric) it is 1, so events/sec is
# simply 1e9/ns_op.
printf '%s\n' "$RAW" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = 0; ev = 1; allocs = 0
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "events/op") ev = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == 0) next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"ns_per_op\": %.0f, \"allocs_per_op\": %d, \"events_per_sec\": %.0f}", \
        name, ns, allocs, ev / ns * 1e9
}
BEGIN { printf "[\n" }
END { printf "\n]\n" }
' >"$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"
