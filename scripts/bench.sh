#!/usr/bin/env sh
# Ingest hot-path benchmark tracker: runs the table, ingest-handler, codec
# and workload micro-benchmarks and records (name, ns/op, allocs/op,
# events/sec) in BENCH_ingest.json at the repository root, so hot-path
# regressions show up as a diff. Run from anywhere inside the repository.
#
#   scripts/bench.sh [benchtime]
#
# benchtime defaults to 2s; pass e.g. 5s for lower-variance numbers.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
PATTERN='^(BenchmarkTableApply|BenchmarkTableApplyBatch|BenchmarkIngestHandler|BenchmarkTraceCodec|BenchmarkWorkloadGenerator)$'
OUT=BENCH_ingest.json

echo "==> go test -bench (benchtime=$BENCHTIME)" >&2
RAW=$(go test -run='^$' -bench="$PATTERN" -benchmem -benchtime="$BENCHTIME" .)
printf '%s\n' "$RAW" >&2

# Benchmark lines look like:
#   BenchmarkTableApplyBatch  3626  642466 ns/op  32768 events/op  8 B/op  0 allocs/op
# events/op is the per-iteration event count reported by the benchmark; for
# per-event benchmarks (no events/op metric) it is 1, so events/sec is
# simply 1e9/ns_op.
printf '%s\n' "$RAW" | awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = 0; ev = 1; allocs = 0
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "events/op") ev = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == 0) next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"ns_per_op\": %.0f, \"allocs_per_op\": %d, \"events_per_sec\": %.0f}", \
        name, ns, allocs, ev / ns * 1e9
}
BEGIN { printf "[\n" }
END { printf "\n]\n" }
' >"$OUT"

echo "==> wrote $OUT" >&2
cat "$OUT"

# --- POST vs streaming transport comparison --------------------------------
# Drives the identical seeded workload through POST /v1/ingest and through a
# streaming session at several credit windows against an ephemeral reactived,
# and records throughput and p99 batch latency per transport in
# BENCH_stream.json. The windows bracket the backpressure regimes: window 1
# is fully serialized (one frame in flight), larger windows pipeline.
STREAM_OUT=BENCH_stream.json
BENCH_DIR=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$BENCH_DIR"
}
trap cleanup EXIT INT TERM

echo "==> building reactived + reactiveload for the transport comparison" >&2
go build -o "$BENCH_DIR/reactived" ./cmd/reactived
go build -o "$BENCH_DIR/reactiveload" ./cmd/reactiveload

"$BENCH_DIR/reactived" \
    -addr 127.0.0.1:0 \
    -addr-file "$BENCH_DIR/addr" >"$BENCH_DIR/reactived.log" 2>&1 &
DAEMON_PID=$!
i=0
while [ ! -s "$BENCH_DIR/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "reactived never published its address" >&2
        cat "$BENCH_DIR/reactived.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$BENCH_DIR/addr")

# Every run replays the same seeded gzip workload at batch 1024, so the
# transports are compared on identical event sequences.
run_load() { # $1 = report label; rest = transport-selecting flags
    label=$1
    shift
    echo "==> reactiveload $label" >&2
    "$BENCH_DIR/reactiveload" \
        -addr "http://$ADDR" \
        -bench gzip \
        -scale 0.5 \
        -events 50000 \
        -seed 7 \
        -concurrency 4 \
        -batch 1024 \
        "$@" >"$BENCH_DIR/$label.json"
}

# All runs replay the same programs, so the first one also pays the cold
# cost of populating the controller table; burn that on an unrecorded
# warmup so every measured run sees the same converged table state.
run_load warmup
run_load post
run_load stream-w1 -stream -window 1
run_load stream-w4 -stream -window 4
run_load stream-w16 -stream -window 16
run_load stream-w32 -stream -window 32

# Pull one numeric field out of an indented JSON report.
field() { # $1 = report label, $2 = field name
    sed -n 's/.*"'"$2"'": *\([0-9.eE+-][0-9.eE+-]*\).*/\1/p' "$BENCH_DIR/$1.json"
}

{
    printf '[\n'
    first=1
    for label in post stream-w1 stream-w4 stream-w16 stream-w32; do
        if [ "$first" -eq 1 ]; then first=0; else printf ',\n'; fi
        window=$(field "$label" window)
        printf '  {"name": "%s", "mode": "%s", "window": %s, "batch": 1024, "events_per_sec": %s, "batch_latency_p99_ms": %s}' \
            "$label" \
            "${label%%-*}" \
            "${window:-0}" \
            "$(field "$label" events_per_sec)" \
            "$(field "$label" batch_latency_p99_ms)"
    done
    printf '\n]\n'
} >"$STREAM_OUT"

echo "==> wrote $STREAM_OUT" >&2
cat "$STREAM_OUT"
