#!/usr/bin/env sh
# Tier-1 verification gate: static analysis, full build, and the test suite
# under the race detector (race mode exercises the hardened parallel
# experiment drivers). Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> OK"
