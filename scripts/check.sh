#!/usr/bin/env sh
# Tier-1 verification gate: static analysis, full build, the test suite
# under the race detector (race mode exercises the hardened parallel
# experiment drivers), and an end-to-end smoke run of the serving mode
# (reactiveload driving an ephemeral reactived over localhost with decision
# verification on). Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The observability layer and the server share lock-striped and atomic hot
# paths; run them twice under the race detector so scheduling-order races
# get a second chance to surface.
echo "==> go test -race -count=2 ./internal/obs ./internal/server"
go test -race -count=2 ./internal/obs ./internal/server

echo "==> serving-mode smoke (reactiveload vs ephemeral reactived)"
SMOKE_DIR=$(mktemp -d)
DAEMON_PID=""
REPLICA_PID=""
# On failure, preserve the daemon logs, the WAL directories, and the failover
# report for post-mortem when the caller points CHECK_ARTIFACT_DIR somewhere
# (CI uploads them).
cleanup() {
    status=$?
    if [ "$status" -ne 0 ] && [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$CHECK_ARTIFACT_DIR"
        cp "$SMOKE_DIR"/*.log "$CHECK_ARTIFACT_DIR"/ 2>/dev/null || true
        cp "$SMOKE_DIR"/*.json "$CHECK_ARTIFACT_DIR"/ 2>/dev/null || true
        cp "$SMOKE_DIR"/*.jsonl "$CHECK_ARTIFACT_DIR"/ 2>/dev/null || true
        cp "$SMOKE_DIR"/*.txt "$CHECK_ARTIFACT_DIR"/ 2>/dev/null || true
        for d in "$SMOKE_DIR"/wal*; do
            [ -d "$d" ] && cp -r "$d" "$CHECK_ARTIFACT_DIR/$(basename "$d")" 2>/dev/null || true
        done
    fi
    for pid in "$DAEMON_PID" "$REPLICA_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT INT TERM

go build -o "$SMOKE_DIR/reactived" ./cmd/reactived
go build -o "$SMOKE_DIR/reactiveload" ./cmd/reactiveload
go build -o "$SMOKE_DIR/reactivespec" ./cmd/reactivespec

# Random port; the daemon publishes the bound address through -addr-file.
# This smoke runs with span tracing at 1-in-1 so every batch leaves a full
# server-side span tree; reactivespec spans must parse it afterwards.
"$SMOKE_DIR/reactived" \
    -addr 127.0.0.1:0 \
    -addr-file "$SMOKE_DIR/addr" \
    -stream-addr 127.0.0.1:0 \
    -stream-addr-file "$SMOKE_DIR/stream-addr" \
    -stream-unix "$SMOKE_DIR/reactived.sock" \
    -stream-unix-file "$SMOKE_DIR/stream-unix.txt" \
    -snapshot-dir "$SMOKE_DIR/snaps" \
    -snapshot-interval 0 \
    -trace-spans "$SMOKE_DIR/spans-serve.jsonl" \
    -trace-sample 1 >"$SMOKE_DIR/reactived.log" 2>&1 &
DAEMON_PID=$!

i=0
while [ ! -s "$SMOKE_DIR/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "reactived never published its address" >&2
        cat "$SMOKE_DIR/reactived.log" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "reactived exited early" >&2
        cat "$SMOKE_DIR/reactived.log" >&2
        exit 1
    }
    sleep 0.1
done
ADDR=$(cat "$SMOKE_DIR/addr")

"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -bench gzip \
    -scale 0.02 \
    -concurrency 2 \
    -batch 512 \
    -frames 2 \
    -trace-spans "$SMOKE_DIR/spans-load.jsonl" \
    -verify

# Mixed-kind smoke: four workers round-robin all four speculation kinds
# against the same daemon — branch rides the v1 wire, the rest go through
# /v2 with kind-tagged requests — and -verify holds every decision to a
# per-kind in-process mirror. -policy reactive also exercises the
# policy-pin precheck (identical hash to the daemon's default).
echo "==> mixed-kind smoke (branch,value,memdep,tlspec on one daemon)"
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -bench eon \
    -scale 0.02 \
    -concurrency 4 \
    -batch 512 \
    -kind branch,value,memdep,tlspec \
    -policy reactive \
    -verify

# A verified workload over a streaming session (POST /v1/stream upgrade):
# decisions must match the in-process mirror exactly, pinning
# stream-transport equivalence end to end. Each smoke run uses a distinct
# benchmark so its programs hit fresh controllers — the daemon keeps the
# state the previous run trained, and -verify's mirror starts cold.
echo "==> streaming-mode smoke (reactiveload -stream -verify)"
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -bench vpr \
    -scale 0.02 \
    -concurrency 2 \
    -batch 512 \
    -stream \
    -window 8 \
    -verify

# And once more over the raw -stream-addr TCP listener (no HTTP upgrade).
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -stream-addr "$(cat "$SMOKE_DIR/stream-addr")" \
    -bench mcf \
    -scale 0.02 \
    -concurrency 2 \
    -batch 512 \
    -verify

# And over the unix-domain stream listener: the daemon published its dial
# target ("unix://<path>") through -stream-unix-file, and reactiveload's
# -stream-addr accepts it directly. The .txt target file doubles as the
# post-mortem artifact naming the socket path on failure.
echo "==> unix-socket smoke (reactiveload -verify over unix://)"
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -stream-addr "$(cat "$SMOKE_DIR/stream-unix.txt")" \
    -bench bzip2 \
    -scale 0.02 \
    -concurrency 2 \
    -batch 512 \
    -verify

# Mixed-proto smoke: -decisions plain pins the client handshake to stream
# proto 2 — the wire an old build speaks — so this run proves the proto-3
# server still hands pre-coalescing clients byte-correct decisions.
echo "==> mixed-proto smoke (proto-2 client vs proto-3 server)"
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -bench vortex \
    -scale 0.02 \
    -concurrency 2 \
    -batch 512 \
    -stream \
    -window 8 \
    -decisions plain \
    -verify

# Graceful shutdown must drain and leave a final snapshot behind.
kill "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
if [ ! -f "$SMOKE_DIR/snaps/current.snap" ]; then
    echo "reactived shutdown left no snapshot" >&2
    exit 1
fi
# Graceful shutdown must also have unlinked the unix stream socket.
if [ -e "$SMOKE_DIR/reactived.sock" ]; then
    echo "reactived shutdown left its unix stream socket behind" >&2
    exit 1
fi

# The traced smoke must have left parseable span files on both sides, and
# the analyzer must see traced batches in them (client spans join the same
# traces via the propagated trace IDs).
echo "==> span-trace smoke (reactivespec spans over the serving-smoke files)"
"$SMOKE_DIR/reactivespec" spans \
    "$SMOKE_DIR/spans-serve.jsonl" \
    "$SMOKE_DIR/spans-load.jsonl" >"$SMOKE_DIR/spans-serve-report.txt"
if ! grep -q "traced batches" "$SMOKE_DIR/spans-serve-report.txt" ||
    grep -q "traced batches: 0" "$SMOKE_DIR/spans-serve-report.txt"; then
    echo "span report has no traced batches" >&2
    cat "$SMOKE_DIR/spans-serve-report.txt" >&2
    exit 1
fi

# Crash-recovery smoke: run the daemon with the write-ahead log on
# (fsync=always, so nothing acknowledged may be lost), SIGKILL it in the
# middle of an ingest run, restart it over the same directories, and require
# (a) the restart to report a WAL replay and (b) a verified workload against
# the recovered daemon to pass. Each load uses a bench the daemon has not
# seen, because -verify's in-process mirror starts cold.
echo "==> crash-recovery smoke (SIGKILL mid-ingest, WAL replay on restart)"
"$SMOKE_DIR/reactived" \
    -addr 127.0.0.1:0 \
    -addr-file "$SMOKE_DIR/addr2" \
    -snapshot-dir "$SMOKE_DIR/snaps2" \
    -snapshot-interval 0 \
    -wal-dir "$SMOKE_DIR/wal" \
    -wal-fsync always >"$SMOKE_DIR/reactived-crash.log" 2>&1 &
DAEMON_PID=$!
i=0
while [ ! -s "$SMOKE_DIR/addr2" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "reactived (wal) never published its address" >&2
        cat "$SMOKE_DIR/reactived-crash.log" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "reactived (wal) exited early" >&2
        cat "$SMOKE_DIR/reactived-crash.log" >&2
        exit 1
    }
    sleep 0.1
done
ADDR=$(cat "$SMOKE_DIR/addr2")

# A verified load with the WAL on the write path.
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -bench gcc \
    -scale 0.02 \
    -concurrency 2 \
    -batch 512 \
    -verify

# SIGKILL the daemon while a second load is mid-flight; the client is
# expected to fail when the connection dies.
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -bench parser \
    -scale 0.2 \
    -concurrency 2 \
    -batch 256 >/dev/null 2>&1 &
LOAD_PID=$!
sleep 0.5
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$LOAD_PID" 2>/dev/null || true

# Restart over the same WAL + snapshot directories: recovery must replay.
"$SMOKE_DIR/reactived" \
    -addr 127.0.0.1:0 \
    -addr-file "$SMOKE_DIR/addr3" \
    -snapshot-dir "$SMOKE_DIR/snaps2" \
    -snapshot-interval 0 \
    -wal-dir "$SMOKE_DIR/wal" \
    -wal-fsync always >"$SMOKE_DIR/reactived-recovered.log" 2>&1 &
DAEMON_PID=$!
i=0
while [ ! -s "$SMOKE_DIR/addr3" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "reactived never recovered after SIGKILL" >&2
        cat "$SMOKE_DIR/reactived-recovered.log" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "reactived exited during recovery" >&2
        cat "$SMOKE_DIR/reactived-recovered.log" >&2
        exit 1
    }
    sleep 0.1
done
ADDR=$(cat "$SMOKE_DIR/addr3")

# The pre-crash loads were acknowledged under fsync=always, so recovery
# must have replayed a nonzero tail.
if ! grep "wal: replayed" "$SMOKE_DIR/reactived-recovered.log" | grep -qv "replayed 0 records"; then
    echo "recovered reactived did not report a nonzero WAL replay" >&2
    cat "$SMOKE_DIR/reactived-recovered.log" >&2
    exit 1
fi

# A verified load against the recovered daemon, on a bench the crashed run
# never trained.
"$SMOKE_DIR/reactiveload" \
    -addr "http://$ADDR" \
    -bench twolf \
    -scale 0.02 \
    -concurrency 2 \
    -batch 512 \
    -verify

kill "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""

# Failover smoke: a WAL-shipping primary with a live read-only replica
# attached; reactiveload -failover drives the primary, SIGKILLs it mid-run
# (no drain), promotes the replica over POST /v1/promote, resumes every
# worker from the replica's /v1/cursor, and requires each decision — before
# the crash, re-sent overlap, and the surviving tail — to match its
# in-process mirror bitwise. reactiveload exits nonzero if the kill never
# landed mid-run, so this smoke cannot silently degrade into a plain load.
echo "==> failover smoke (SIGKILL primary mid-run, promote replica, verified resume)"
"$SMOKE_DIR/reactived" \
    -addr 127.0.0.1:0 \
    -addr-file "$SMOKE_DIR/addr-primary" \
    -snapshot-dir "$SMOKE_DIR/snaps-primary" \
    -snapshot-interval 0 \
    -wal-dir "$SMOKE_DIR/wal-primary" \
    -wal-fsync always \
    -replication-addr 127.0.0.1:0 \
    -replication-addr-file "$SMOKE_DIR/repl-addr" \
    -debug-addr 127.0.0.1:0 \
    -debug-addr-file "$SMOKE_DIR/debug-addr" \
    -trace-spans "$SMOKE_DIR/spans-primary.jsonl" \
    -trace-sample 1 >"$SMOKE_DIR/reactived-primary.log" 2>&1 &
DAEMON_PID=$!
i=0
while [ ! -s "$SMOKE_DIR/addr-primary" ] || [ ! -s "$SMOKE_DIR/repl-addr" ] || [ ! -s "$SMOKE_DIR/debug-addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "primary reactived never published its addresses" >&2
        cat "$SMOKE_DIR/reactived-primary.log" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "primary reactived exited early" >&2
        cat "$SMOKE_DIR/reactived-primary.log" >&2
        exit 1
    }
    sleep 0.1
done

"$SMOKE_DIR/reactived" \
    -addr 127.0.0.1:0 \
    -addr-file "$SMOKE_DIR/addr-replica" \
    -snapshot-dir "$SMOKE_DIR/snaps-replica" \
    -snapshot-interval 0 \
    -wal-dir "$SMOKE_DIR/wal-replica" \
    -wal-fsync always \
    -trace-spans "$SMOKE_DIR/spans-replica.jsonl" \
    -trace-sample 1 \
    -replica-of "$(cat "$SMOKE_DIR/repl-addr")" >"$SMOKE_DIR/reactived-replica.log" 2>&1 &
REPLICA_PID=$!
i=0
while [ ! -s "$SMOKE_DIR/addr-replica" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "replica reactived never published its address" >&2
        cat "$SMOKE_DIR/reactived-replica.log" >&2
        exit 1
    fi
    kill -0 "$REPLICA_PID" 2>/dev/null || {
        echo "replica reactived exited early" >&2
        cat "$SMOKE_DIR/reactived-replica.log" >&2
        exit 1
    }
    sleep 0.1
done

"$SMOKE_DIR/reactiveload" \
    -addr "http://$(cat "$SMOKE_DIR/addr-primary")" \
    -failover "http://$(cat "$SMOKE_DIR/addr-replica")" \
    -failover-pid "$DAEMON_PID" \
    -failover-after-batches 6 \
    -failover-debug "http://$(cat "$SMOKE_DIR/debug-addr")" \
    -dump-metrics \
    -trace-spans "$SMOKE_DIR/spans-loadgen.jsonl" \
    -bench crafty \
    -scale 0.2 \
    -events 6000 \
    -concurrency 2 \
    -batch 256 >"$SMOKE_DIR/failover-report.json" 2>"$SMOKE_DIR/failover-metrics.txt"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

# -failover-debug must have captured the primary's replication expvars (the
# follower-lag snapshot) in its last instant alive.
if ! grep -q "primary replication expvars at kill time" "$SMOKE_DIR/failover-metrics.txt"; then
    echo "failover run captured no kill-time replication expvars" >&2
    cat "$SMOKE_DIR/failover-metrics.txt" >&2
    exit 1
fi

# The promoted replica must say so in its own log, and still be alive.
if ! grep -q "promoted to primary" "$SMOKE_DIR/reactived-replica.log"; then
    echo "replica log never recorded the promotion" >&2
    cat "$SMOKE_DIR/reactived-replica.log" >&2
    exit 1
fi
kill -0 "$REPLICA_PID" 2>/dev/null || {
    echo "promoted replica is not running" >&2
    cat "$SMOKE_DIR/reactived-replica.log" >&2
    exit 1
}
kill "$REPLICA_PID"
wait "$REPLICA_PID"
REPLICA_PID=""

# The concatenated primary + replica span files must contain at least one
# complete cross-node chain — a traced batch observed through its WAL
# append, the replication ship, and the follower's apply. -require-chain
# makes the analyzer itself fail otherwise, so propagation cannot silently
# rot into single-node traces.
echo "==> cross-node span chain (reactivespec -require-chain spans)"
"$SMOKE_DIR/reactivespec" -require-chain spans \
    "$SMOKE_DIR/spans-primary.jsonl" \
    "$SMOKE_DIR/spans-replica.jsonl" \
    "$SMOKE_DIR/spans-loadgen.jsonl" >"$SMOKE_DIR/spans-failover-report.txt"

# One iteration of every benchmark, so a bench that rots (compile error,
# panic, bad setup) fails the gate long before anyone needs its numbers.
echo "==> benchmark smoke (-benchtime=1x)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "==> OK"
