#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the full-scale run output.

Usage: python3 scripts/gen_experiments.py all_output.txt EXPERIMENTS.md

Keeps the hand-written header of EXPERIMENTS.md (everything up to and
including the '## Results' line) and appends one commented section per
experiment, quoting the run output verbatim.
"""
import sys

COMMENTARY = {
    "table1": (
        "Table 1 — simulation data sets",
        "The paper's profile/evaluation input pairs, with this reproduction's "
        "scaled run lengths. The synthetic inputs model the two divergence "
        "mechanisms §2.2 identifies: reversed input-dependent predicates and "
        "code exercised by only one input.",
    ),
    "table2": (
        "Table 2 — model parameters",
        "The controller parameters in use (experiment regime) next to the "
        "paper's published values. Rate semantics — the 99.5% selection "
        "threshold and the +50/−1 counter steps — are unchanged; the "
        "count-based windows scale with the workloads (see Methodology).",
    ),
    "fig2": (
        "Figure 2 — the opportunity, and the fragility of one-shot control",
        "Per benchmark: the self-training knee at the 99% threshold, the "
        "cross-input profile (triangle), and initial-behavior training at "
        "five lengths (crosses; lengths regime-scaled from the paper's "
        "1k–1M). The paper's findings reproduce: cross-input selection loses "
        "roughly a third to two-thirds of the benefit at roughly an order of "
        "magnitude more misspeculation; longer initial training lowers "
        "misspeculation but costs benefit; and mcf's heavy late-reversing "
        "branch (planted per §2.2) holds misspeculation near 6% at every "
        "training length — the paper reports 3% even at one million "
        "executions. `-format svg fig2` renders the full Pareto curves.",
    ),
    "fig3": (
        "Figure 3 — initially-invariant branches that change",
        "Five gap branches that are highly biased for at least their first "
        "20 blocks of 1,000 instances and then change: a complete reversal, "
        "an induction-variable flip, an oscillator, a two-phase branch, and "
        "a softening branch — the same five behavior shapes the paper plots. "
        "From the initial window alone they are indistinguishable from "
        "stably-biased branches, which is the whole problem.",
    ),
    "fig4": (
        "Figure 4 — the classifier",
        "The reactive state machine (reproduced as documentation; the "
        "implementation is internal/core).",
    ),
    "fig5": (
        "Figure 5 — reactive control vs. self-training, with sensitivity variants",
        "Per benchmark, each controller configuration's correct/incorrect "
        "rates. As in the paper, every variant except no-evict and "
        "no-revisit sits in a tight cluster near the baseline: the model is "
        "insensitive to how it is implemented, but both reactive arcs must "
        "exist. The baseline tracks (and on several benchmarks exceeds) the "
        "self-training point, because it exploits the two-phase branches "
        "self-training must reject.",
    ),
    "table3": (
        "Table 3 — model transition data",
        "The headline calibration table, measured against the published "
        "row values. Population fractions (biased%, evicted%) and "
        "speculation coverage land within a couple of points per benchmark; "
        "the suite averages match the paper's 34% / 2% / 44.8%. "
        "Misspeculation distances are scale-compressed (see Methodology) "
        "but stay within the same order of magnitude and preserve most of "
        "the per-benchmark ordering (twolf longest, mcf/gap shortest). One "
        "knowingly-accepted artifact: vortex's evicted%% runs about double "
        "the paper's because its Figure 9 correlated population is kept "
        "heavy enough to characterize per-window, and those members get "
        "selected and evicted at their group flips.",
    ),
    "table4": (
        "Table 4 — model sensitivity",
        "Suite averages per configuration. The paper's two real outliers "
        "reproduce exactly: no-revisit is the only configuration that loses "
        "meaningful correct speculation (~15% relative, paper ~20%), and "
        "no-evict is the only one whose misspeculation rate explodes — two "
        "orders of magnitude, 3.3% here vs. the paper's 2.0%. The "
        "remaining variants differ by at most ~1 point of coverage, the "
        "paper's insensitivity claim.",
    ),
    "fig6": (
        "Figure 6 — what branches do after leaving the biased state",
        "The post-eviction misprediction-rate distribution over the 64 "
        "instances after each eviction. Most transitions soften (79% below "
        "a 30% misprediction rate; paper: over 50%) and a minority reverse "
        "perfectly (14% above 90%; paper: ~20%) — only the latter need "
        "fast reaction, which is why the model tolerates slow eviction.",
    ),
    "fig7": (
        "Figure 7 — closed vs. open loop on the MSSP machine",
        "Normalized to the superscalar baseline (B = 1.0). The eviction arc "
        "is a first-order performance effect: closed-loop geomean ~1.24 vs. "
        "open-loop ~0.96 — the open loop gives up ~23% (paper: 18%) — and it "
        "drops several benchmarks below the baseline, exactly the paper's "
        "\"difference between speedups and slow-downs\". The task-misspec "
        "columns show why: orders of magnitude more squashes without "
        "eviction. The longer 10k monitor period (C/O) compresses the gap "
        "to ~4% (paper: 11% residual) because, as §4.2 warns for short "
        "runs, a long monitor forfeits most of the speculation for both "
        "policies.",
    ),
    "fig8": (
        "Figure 8 — optimization-latency insensitivity",
        "Closed-loop MSSP performance at (re)optimization latencies of 0, "
        "10^5 and 10^6 cycles (scaled to the run length as 0 / 8k / 80k). "
        "As the paper reports, the differences are small — latency "
        "tolerance is what makes a software implementation of the "
        "controller practical.",
    ),
    "fig9": (
        "Figure 9 — correlated behavior changes (vortex)",
        "Branches with significant periods both biased and unbiased, one "
        "track per branch ('#' = characterized biased in that window). The "
        "correlated groups change together, which is why the distiller "
        "batches re-optimizations per region — the paper finds about half "
        "of re-optimizations apply more than one change (cf. the "
        "ChangesApplied/Reopts statistics in the MSSP runs).",
    ),
    "table5": (
        "Table 5 — simulated machine",
        "The CMP parameters as implemented (internal/cpu, internal/cache, "
        "internal/bpred).",
    ),
    "averaging": (
        "Extension: profile averaging (the §2.2 'data not shown')",
        "Selecting from the merged profile of K differing inputs. As the "
        "paper asserts without showing: misspeculation falls steeply with K "
        "(input-dependent branches stop looking biased) — and the "
        "opportunity those branches represented is forfeited, visible in "
        "the selected-branch counts and the flattening correct rate.",
    ),
    "flush": (
        "Extension: Dynamo-style preemptive flushing (the §5 prediction)",
        "A policy that decides from initial behavior but periodically "
        "flushes everything (the fragment-cache flush). The paper predicts "
        "it lands \"somewhere between closed-loop and open-loop\": measured, "
        "its misspeculation rate sits between the two on every benchmark, "
        "at a coverage cost from repeated retraining.",
    ),
    "generality": (
        "Extension: other program behaviors (the §2 generality claim)",
        "The same control model applied to load-value invariance (modal-"
        "value monitor, constant speculation) and memory dependences "
        "(conflict/no-conflict pairs). Both domains show the branch-study "
        "shape: reactive control comparable to self-training with a "
        "misspeculation rate two orders of magnitude below the open loop.",
    ),
    "replay": (
        "Extension: a rePLay-style frame engine (the paper's reference [4])",
        "Frames of asserted branches over the same programs. Under "
        "reactive control frames abort rarely and framing pays; open-loop "
        "assertion of changing branches aborts frames so often the engine "
        "runs slower than not framing at all — the same first-order "
        "conclusion as Figure 7 in the paper's other named consumer.",
    ),
    "tls": (
        "Extension: thread-level speculation (the paper's reference [18])",
        "Loops parallelized while their cross-iteration dependence pairs "
        "are speculated conflict-free. The reactive controller serializes "
        "loops whose dependences materialize mid-run (aliasing onset); the "
        "open loop keeps squashing epochs and surrenders most of the "
        "parallel speedup.",
    ),
    "sweep-monitor": (
        "Ablation: monitor-period sweep",
        "Around the §3.3 observation: short monitor windows admit more "
        "false positives, long ones forfeit coverage; the model sits on a "
        "flat plateau between. (Run on the gap/gzip/mcf/twolf subset; any benchmark set reproduces the shape via -bench.)",
    ),
    "sweep-evict": (
        "Ablation: eviction-threshold sweep",
        "Extends the paper's single lower-threshold point: smaller "
        "thresholds are more conservative (less coverage, less "
        "misspeculation); the effect is mild across a 100× range — the "
        "hysteresis ratio, not the absolute threshold, carries the "
        "behavior. (Run on the gap/gzip/mcf/twolf subset; any benchmark set reproduces the shape via -bench.)",
    ),
    "sweep-wait": (
        "Ablation: revisit-wait sweep",
        "The paper's \"more frequent revisit\" trade-off as a curve: shorter "
        "waits find late-biased branches sooner (more correct) but admit "
        "more temporarily-biased false positives (more incorrect). (Run on the gap/gzip/mcf/twolf subset; any benchmark set reproduces the shape via -bench.)",
    ),
    "sweep-oscillation": (
        "Ablation: oscillation-limit sweep",
        "The paper caps oscillation at five optimizations and reports the "
        "cap costs little while eliminating most re-optimization traffic; "
        "the sweep shows coverage saturating by a limit of ~2–5 while "
        "selections (≈ re-optimization requests) keep growing without it. (Run on the gap/gzip/mcf/twolf subset; any benchmark set reproduces the shape via -bench.)",
    ),
    "sweep-step": (
        "Ablation: counter-step sweep",
        "The +50 misspeculation step sets the eviction bias (step ratio "
        "≈ 2% misprediction); halving or doubling it shifts the "
        "tolerated-softening boundary slightly, with second-order effects "
        "— consistent with §3.3's insensitivity. (Run on the gap/gzip/mcf/twolf subset; any benchmark set reproduces the shape via -bench.)",
    ),
    "sweep-threshold": (
        "Ablation: selection-threshold sweep",
        "Stricter selection thresholds trade coverage for purity along the "
        "same Pareto front the self-training curve traces. (Run on the gap/gzip/mcf/twolf subset; any benchmark set reproduces the shape via -bench.)",
    ),
    "sweep-task": (
        "Ablation: task-granularity sweep (the §4.3 folding effect)",
        "Longer MSSP tasks fold more individual violations into each task "
        "squash: the violations-per-misspec ratio grows steadily with task "
        "length while performance stays flat — the machine's misspeculation "
        "rate undershoots the abstract model, as the paper observes.",
    ),
    "sweep-slaves": (
        "Ablation: trailing-core-count sweep",
        "With one trailing core, verification bandwidth throttles the "
        "master on compute-bound programs; by two to four cores the "
        "Table 5 machine is verification-rich, and further cores mostly "
        "add shared-L2 and coherence traffic.",
    ),
    "describe": (
        "Workload audit",
        "The class composition of a workload population (gcc shown): the "
        "calibrated tiers and planted behavior classes that make the "
        "substitution argument auditable.",
    ),
}

ORDER_HEADER = "## Results"


def main(inp, outp):
    text = open(inp, encoding="utf-8").read()
    sections = []
    cur_name, cur_lines = None, []
    for line in text.splitlines():
        if line.startswith("=== ") and line.rstrip().endswith(" ==="):
            if cur_name:
                sections.append((cur_name, "\n".join(cur_lines).strip("\n")))
            cur_name = line.strip().strip("= ").strip()
            cur_lines = []
        elif cur_name:
            cur_lines.append(line)
    if cur_name:
        sections.append((cur_name, "\n".join(cur_lines).strip("\n")))

    head = open(outp, encoding="utf-8").read()
    idx = head.index(ORDER_HEADER)
    head = head[: idx + len(ORDER_HEADER)]
    head += (
        "\n\nThe sections below quote the full-scale run (seed 0). Each is"
        "\nregenerated by the named CLI experiment.\n"
    )

    out = [head]
    for name, body in sections:
        title, comment = COMMENTARY.get(name, (name, ""))
        out.append(f"\n### {title}\n\n")
        out.append(f"`reactivespec {name}`\n\n")
        if comment:
            out.append(comment + "\n\n")
        out.append("```\n" + body + "\n```\n")
    open(outp, "w", encoding="utf-8").write("".join(out))
    print(f"wrote {outp}: {len(sections)} sections")


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
