// Command reactived is the networked speculation-control daemon: it hosts a
// sharded table of reactive controllers (internal/server), ingests batches
// of branch-outcome events over HTTP in the internal/trace frame format,
// serves classification decisions back, snapshots table state to disk with
// atomic rename, and restores it on start.
//
// Usage:
//
//	reactived [flags]
//
// Flags:
//
//	-addr a               listen address (default 127.0.0.1:8344; use :0 for a random port)
//	-addr-file f          write the bound address to f once listening (for scripts)
//	-stream-addr a        also accept raw-TCP streaming ingest sessions on this address
//	-stream-addr-file f   write the bound stream address to f once listening
//	-stream-unix p        also accept streaming ingest sessions on a unix-domain
//	                      socket at path p (co-located producers skip the TCP stack;
//	                      a stale socket file from a crashed daemon is removed if
//	                      nothing is listening, and the file is unlinked on shutdown)
//	-stream-unix-file f   write the stream socket target (unix://p) to f once listening
//	-shards n             lock-stripe count for the controller table (default 16)
//	-param-scale k        divide the paper's Table 2 parameters by k (default 10)
//	-policy p             speculation policy every table entry runs: reactive
//	                      (the paper's FSM, default), selftrain (classify once
//	                      after the monitor window, never revisit), or
//	                      probweight (EWMA-weighted probabilistic selection).
//	                      The policy is mixed into the params hash, so clients
//	                      pinned to another policy's decisions are rejected.
//	-kinds k1,k2          speculation kinds to serve (default all: branch,
//	                      value, memdep, tlspec); requests for other kinds are
//	                      rejected with the unsupported_kind code
//	-snapshot-dir d       enable snapshot/restore under directory d
//	-snapshot-interval t  periodic snapshot interval (default 30s; 0 = only on shutdown)
//	-wal-dir d            enable the write-ahead event log under directory d
//	-wal-fsync p          WAL fsync policy: always, interval[=dur], or never (default interval)
//	-wal-segment-bytes n  WAL segment rotation threshold (default 64 MiB)
//	-replication-addr a   serve WAL replication to followers on this address (requires -wal-dir)
//	-replication-addr-file f  write the bound replication address to f once listening
//	-replica-of a         run as a read-only replica of the primary's replication
//	                      listener at a (requires -wal-dir)
//	-debug-addr a         serve net/http/pprof, expvar and /debug/spans on a
//	                      separate listener
//	-debug-addr-file f    write the bound debug address to f once listening
//	-trace-spans f        append sampled end-to-end batch spans to f as JSONL
//	                      (analyze with `reactivespec spans`)
//	-trace-sample n       trace 1 in n ingest batches (0 disables tracing;
//	                      -trace-spans alone implies 1)
//
// With -wal-dir, every ingested frame is appended to a segmented write-ahead
// log before it is applied, and startup becomes restore-snapshot → replay
// WAL tail → resume: a SIGKILL loses at most the tail the fsync policy
// permits, and recovery reproduces byte-identical decisions for everything
// durably logged. Snapshots anchor the log — segments wholly covered by the
// latest durable snapshot are deleted.
//
// Replication: a primary started with -replication-addr ships its WAL to
// attached followers (only records it has fsynced). A daemon started with
// -replica-of runs read-only — client ingest is rejected with the read_only
// code while every shipped record flows through the same log-before-apply
// path as primary ingest — and is promoted to a writable primary by SIGUSR1
// or POST /v1/promote, which seals replication first so no record can land
// after the flip. GET /v1/cursor reports per-program applied-event counts,
// the resume point failover clients re-send from.
//
// Endpoints: POST /v1/ingest, GET /v1/decide, GET /v1/info, POST /v1/stream
// (upgrade to a streaming ingest session), GET /healthz, GET /metrics,
// POST /v1/snapshot. Streaming sessions are also reachable without HTTP via
// -stream-addr. With -debug-addr, a second listener serves the runtime
// profiling surface — GET /debug/pprof/ (CPU, heap, goroutine, block
// profiles) and GET /debug/vars (expvar, including a "reactived" variable
// summarizing table totals and WAL position) — kept off the serving address
// so profiling traffic can be firewalled separately. SIGINT/SIGTERM drain
// in-flight batches, take a final snapshot (when -snapshot-dir is set), and
// exit 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"reactivespec/internal/core"
	"reactivespec/internal/obs"
	"reactivespec/internal/replica"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reactived:", err)
		os.Exit(1)
	}
}

// expvarServer points /debug/vars at the daemon currently running in this
// process. expvar.Publish is once-per-name for the process lifetime, while
// tests call run repeatedly, so the published Func dereferences this pointer
// instead of capturing one server.
var expvarServer atomic.Pointer[server.Server]

// replicationVars is the replication machinery the expvar block reports on;
// either side may be nil.
type replicationVars struct {
	follower *replica.Follower
	shipper  *replica.Shipper
}

var expvarReplication atomic.Pointer[replicationVars]

// debugTracer points /debug/spans at the tracer of the daemon currently
// running in this process (same re-run-safe shape as expvarServer); nil when
// tracing is off.
var debugTracer atomic.Pointer[obs.Tracer]

var debugSpansOnce sync.Once

// publishDebugSpans registers /debug/spans on the default mux once per
// process: a JSONL dump of the tracer's retained span ring, newest window of
// DefaultTraceRing spans, in the same byte-deterministic encoding as the
// -trace-spans file.
func publishDebugSpans() {
	debugSpansOnce.Do(func() {
		http.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
			t := debugTracer.Load()
			if t == nil {
				http.Error(w, "span tracing disabled (start with -trace-sample)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			t.WriteJSONL(w)
		})
	})
}

// publishExpvars registers the "reactived" expvar once per process.
func publishExpvars() {
	if expvar.Get("reactived") != nil {
		return
	}
	expvar.Publish("reactived", expvar.Func(func() any {
		s := expvarServer.Load()
		if s == nil {
			return nil
		}
		var total server.ShardMetrics
		for _, m := range s.Table().Metrics() {
			total.Add(m)
		}
		v := map[string]any{
			"events":       total.Events,
			"instructions": total.Instrs,
			"misspec_rate": total.MisspecRate(),
			"entries":      total.Entries,
			"shards":       s.Table().Shards(),
			"draining":     s.Draining(),
			"mode":         s.Mode(),
		}
		if rv := expvarReplication.Load(); rv != nil {
			repl := map[string]any{}
			if f := rv.follower; f != nil {
				errMsg := ""
				if err := f.Err(); err != nil {
					errMsg = err.Error()
				}
				repl["follower"] = map[string]any{
					"state":        f.State(),
					"last_applied": f.LastApplied(),
					"error":        errMsg,
				}
			}
			if sh := rv.shipper; sh != nil {
				records, bytes := sh.Shipped()
				shipVars := map[string]any{
					"sessions":        sh.Sessions(),
					"shipped_records": records,
					"shipped_bytes":   bytes,
				}
				if lagRecords, lagSeconds, ok := sh.FollowerLag(""); ok {
					shipVars["follower_lag_records"] = lagRecords
					shipVars["follower_lag_seconds"] = lagSeconds
				}
				repl["shipper"] = shipVars
			}
			v["replication"] = repl
		}
		if l := s.WAL(); l != nil {
			st := l.Stats()
			v["wal"] = map[string]any{
				"dir":              l.Dir(),
				"policy":           l.Policy().String(),
				"appended_records": st.AppendedRecords,
				"appended_bytes":   st.AppendedBytes,
				"fsyncs":           st.Fsyncs,
				"segments":         st.Segments,
				"oldest_seq":       st.OldestSeq,
				"next_seq":         st.NextSeq,
			}
		}
		return v
	}))
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reactived", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (use :0 for a random port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	streamAddr := fs.String("stream-addr", "",
		"also accept raw-TCP streaming ingest sessions on this address (use :0 for a random port)")
	streamAddrFile := fs.String("stream-addr-file", "",
		"write the bound stream address to this file once listening")
	streamUnix := fs.String("stream-unix", "",
		"also accept streaming ingest sessions on a unix-domain socket at this path")
	streamUnixFile := fs.String("stream-unix-file", "",
		"write the stream socket target (unix://path) to this file once listening")
	shards := fs.Int("shards", 16, "lock-stripe count for the controller table")
	paramScale := fs.Uint64("param-scale", 10, "divide the paper's Table 2 parameters by this factor")
	policyFlag := fs.String("policy", core.PolicyReactive,
		"speculation policy every table entry runs: "+strings.Join(core.PolicyNames(), ", "))
	kindsFlag := fs.String("kinds", "",
		"comma-separated speculation kinds to serve (default all: "+strings.Join(trace.KindNames(), ",")+")")
	snapshotDir := fs.String("snapshot-dir", "", "enable snapshot/restore under this directory")
	snapshotInterval := fs.Duration("snapshot-interval", 30*time.Second,
		"periodic snapshot interval (0 = only on shutdown)")
	walDir := fs.String("wal-dir", "", "enable the write-ahead event log under this directory")
	walFsync := fs.String("wal-fsync", "interval",
		"WAL fsync policy: always, interval[=duration], or never")
	walSegmentBytes := fs.Int64("wal-segment-bytes", wal.DefaultSegmentBytes,
		"WAL segment rotation threshold in bytes")
	replicationAddr := fs.String("replication-addr", "",
		"serve WAL replication to followers on this address (requires -wal-dir; use :0 for a random port)")
	replicationAddrFile := fs.String("replication-addr-file", "",
		"write the bound replication address to this file once listening")
	replicaOf := fs.String("replica-of", "",
		"run as a read-only replica of the primary's replication listener at this address (requires -wal-dir)")
	debugAddr := fs.String("debug-addr", "",
		"serve net/http/pprof and expvar on this separate listener (use :0 for a random port)")
	debugAddrFile := fs.String("debug-addr-file", "",
		"write the bound debug address to this file once listening")
	traceSpans := fs.String("trace-spans", "",
		"append sampled end-to-end batch spans to this file as JSONL")
	traceSample := fs.Int("trace-sample", 0,
		"trace 1 in n ingest batches (0 disables tracing; -trace-spans alone implies 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(out, "reactived: "+format+"\n", a...)
	}
	params := core.DefaultParams().Scaled(*paramScale)

	// Validate the policy and kind list before anything touches disk or the
	// network; server.New would panic on an unknown policy.
	if !core.ValidPolicy(*policyFlag) {
		return fmt.Errorf("unknown -policy %q (registered: %s)",
			*policyFlag, strings.Join(core.PolicyNames(), ", "))
	}
	var kinds []trace.Kind
	if *kindsFlag != "" {
		for _, name := range strings.Split(*kindsFlag, ",") {
			k, err := trace.ParseKind(strings.TrimSpace(name))
			if err != nil {
				return fmt.Errorf("parsing -kinds: %w", err)
			}
			kinds = append(kinds, k)
		}
	}

	// Replication in either role rides on the WAL: the shipper serves it,
	// the follower logs into it before applying.
	if *replicaOf != "" && *walDir == "" {
		return fmt.Errorf("-replica-of requires -wal-dir (the replica logs shipped records before applying them)")
	}
	if *replicationAddr != "" && *walDir == "" {
		return fmt.Errorf("-replication-addr requires -wal-dir (replication ships the write-ahead log)")
	}

	// The span tracer rides every layer (server, WAL, replication), so it is
	// built first; a nil tracer is the off switch — each instrumented call
	// site pays one predictable nil-check branch.
	sampleN := *traceSample
	if *traceSpans != "" && sampleN == 0 {
		sampleN = 1
	}
	var tracer *obs.Tracer
	if sampleN > 0 {
		node := "primary"
		if *replicaOf != "" {
			node = "replica"
		}
		tracer = obs.NewTracer(node, sampleN)
		if *traceSpans != "" {
			f, err := os.OpenFile(*traceSpans, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("opening -trace-spans: %w", err)
			}
			defer f.Close()
			tracer.SetOutput(f)
			defer tracer.Close()
		}
		logf("span tracing enabled (node=%s, 1 in %d batches, spans=%s)",
			tracer.Node(), sampleN, *traceSpans)
	}
	debugTracer.Store(tracer)

	var wlog *wal.Log
	if *walDir != "" {
		policy, interval, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			return fmt.Errorf("parsing -wal-fsync: %w", err)
		}
		wlog, err = wal.Open(wal.Options{
			Dir:          *walDir,
			ParamsHash:   server.ParamsPolicyHash(params, *policyFlag),
			SegmentBytes: *walSegmentBytes,
			Policy:       policy,
			Interval:     interval,
			Logf:         logf,
			Trace:        tracer,
		})
		if err != nil {
			return fmt.Errorf("opening wal: %w", err)
		}
		defer wlog.Close()
		logf("wal enabled under %s (fsync=%s)", *walDir, policy)
	}

	s := server.New(server.Config{
		Params:      params,
		Policy:      *policyFlag,
		Kinds:       kinds,
		Shards:      *shards,
		SnapshotDir: *snapshotDir,
		WAL:         wlog,
		Replica:     *replicaOf != "",
		Logf:        logf,
		Trace:       tracer,
	})
	rec, err := s.Recover()
	if err != nil {
		return fmt.Errorf("recovering state: %w", err)
	}
	if !rec.SnapshotRestored && *snapshotDir != "" {
		logf("no snapshot under %s; starting fresh", *snapshotDir)
	}
	if wlog != nil {
		logf("wal: replayed %d records (%d events); next seq %d",
			rec.ReplayedRecords, rec.ReplayedEvents, wlog.NextSeq())
	}

	// Replication starts only after recovery: the WAL's numbering is final
	// by now (AlignSeq has run), so both the shipper's retained range and
	// the follower's resume point are exact.
	var rvars replicationVars
	var followerDone <-chan struct{}
	if *replicationAddr != "" {
		sh := replica.NewShipper(replica.ShipperConfig{Log: wlog, Logf: logf, Trace: tracer})
		sh.RegisterMetrics(s.Registry())
		rln, err := net.Listen("tcp", *replicationAddr)
		if err != nil {
			return fmt.Errorf("listening on -replication-addr: %w", err)
		}
		if *replicationAddrFile != "" {
			if err := os.WriteFile(*replicationAddrFile, []byte(rln.Addr().String()), 0o644); err != nil {
				rln.Close()
				return fmt.Errorf("writing -replication-addr-file: %w", err)
			}
		}
		logf("replication listener on %s", rln.Addr())
		go sh.Serve(rln)
		defer sh.Close()
		rvars.shipper = sh
	}
	if *replicaOf != "" {
		f := replica.StartFollower(replica.FollowerConfig{
			Addr:       *replicaOf,
			ParamsHash: server.ParamsPolicyHash(params, *policyFlag),
			NextSeq:    wlog.NextSeq,
			Apply:      s.ApplyReplicated,
			Logf:       logf,
			Trace:      tracer,
		})
		s.SetSealFunc(f.Seal)
		f.RegisterMetrics(s.Registry())
		defer f.Seal()
		followerDone = f.Done()
		rvars.follower = f
		logf("replica mode: following %s from wal seq %d (SIGUSR1 or POST /v1/promote to promote)",
			*replicaOf, wlog.NextSeq())
	}
	expvarReplication.Store(&rvars)

	// SIGUSR1 promotes a replica in place, for failover drivers that only
	// hold a pid.
	promoteCh := make(chan os.Signal, 1)
	signal.Notify(promoteCh, syscall.SIGUSR1)
	defer signal.Stop(promoteCh)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	logf("listening on %s (%d shards, param scale 1/%d, policy %s, kinds %s)",
		bound, *shards, *paramScale, s.Table().Policy(), strings.Join(s.KindNames(), ","))

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// The raw stream listener shares the server's session loop with the
	// POST /v1/stream upgrade path; only the transport differs.
	if *streamAddr != "" {
		sln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			return fmt.Errorf("listening on -stream-addr: %w", err)
		}
		defer sln.Close()
		if *streamAddrFile != "" {
			if err := os.WriteFile(*streamAddrFile, []byte(sln.Addr().String()), 0o644); err != nil {
				return fmt.Errorf("writing -stream-addr-file: %w", err)
			}
		}
		logf("stream listener on %s", sln.Addr())
		go func() {
			// The accept error is expected at shutdown when the deferred
			// Close tears the listener down.
			s.ServeStream(sln)
		}()
	}

	// The unix-domain stream listener: same session loop again, minus the
	// TCP stack, for producers on the same host.
	if *streamUnix != "" {
		uln, err := listenUnixStream(*streamUnix)
		if err != nil {
			return fmt.Errorf("listening on -stream-unix: %w", err)
		}
		// *net.UnixListener unlinks the socket file on Close, so the
		// deferred Close doubles as the graceful-shutdown cleanup.
		defer uln.Close()
		if *streamUnixFile != "" {
			if err := os.WriteFile(*streamUnixFile, []byte("unix://"+*streamUnix), 0o644); err != nil {
				return fmt.Errorf("writing -stream-unix-file: %w", err)
			}
		}
		logf("stream listener on unix:%s", *streamUnix)
		go func() {
			s.ServeStream(uln)
		}()
	}

	// The runtime profiling surface: pprof and expvar register themselves
	// on the default mux, which we serve on a separate listener so debug
	// traffic never shares a port with ingest.
	if *debugAddr != "" {
		expvarServer.Store(s)
		publishExpvars()
		publishDebugSpans()
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("listening on -debug-addr: %w", err)
		}
		defer dln.Close()
		if *debugAddrFile != "" {
			if err := os.WriteFile(*debugAddrFile, []byte(dln.Addr().String()), 0o644); err != nil {
				return fmt.Errorf("writing -debug-addr-file: %w", err)
			}
		}
		logf("debug listener on %s (/debug/pprof/, /debug/vars, /debug/spans)", dln.Addr())
		go func() {
			// http.DefaultServeMux carries the pprof and expvar
			// handlers; the error is expected at shutdown when the
			// deferred Close tears the listener down.
			http.Serve(dln, nil)
		}()
	}

	snapTick := make(<-chan time.Time)
	var ticker *time.Ticker
	if *snapshotDir != "" && *snapshotInterval > 0 {
		ticker = time.NewTicker(*snapshotInterval)
		defer ticker.Stop()
		snapTick = ticker.C
	}

	for {
		select {
		case <-snapTick:
			if _, err := s.SnapshotNow(); err != nil {
				logf("periodic snapshot failed: %v", err)
			}
		case <-promoteCh:
			if res, err := s.Promote(); err != nil {
				logf("promote (SIGUSR1): %v", err)
			} else {
				logf("promoted to primary at wal seq %d (SIGUSR1)", res.LastAppliedSeq)
			}
		case <-followerDone:
			// The follower stops for good on a permanent error (mismatch,
			// compaction gap, divergence) — surface it and exit rather than
			// serving a replica that silently stopped replicating. A sealed
			// follower (promotion) reports no error; keep serving.
			if rvars.follower.Err() != nil {
				return fmt.Errorf("replication failed: %w", rvars.follower.Err())
			}
			followerDone = nil
		case err := <-serveErr:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case <-ctx.Done():
			logf("shutting down: draining in-flight batches and stream sessions")
			s.BeginDrain()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			// Hijacked stream connections are outside http.Server's
			// bookkeeping, so Shutdown alone would not wait for them:
			// WaitStreams covers the sessions BeginDrain just nudged.
			if err := s.WaitStreams(shutdownCtx); err != nil {
				logf("shutdown: %v", err)
			}
			err := hs.Shutdown(shutdownCtx)
			cancel()
			if err != nil {
				logf("shutdown: %v", err)
			}
			if *snapshotDir != "" {
				if _, err := s.SnapshotNow(); err != nil {
					return fmt.Errorf("final snapshot: %w", err)
				}
				logf("final snapshot written")
			}
			return nil
		}
	}
}

// listenUnixStream binds the -stream-unix listener at path. A socket file
// left behind by a crashed daemon (SIGKILL skips the unlink) would make a
// plain Listen fail with "address already in use", so on that failure the
// pre-existing file is probed: if something answers a dial the path is
// genuinely taken and the bind error stands; if nothing is listening the
// stale file is removed and the bind retried, so a restart reuses its path
// without manual cleanup. Files that are not sockets are never touched.
func listenUnixStream(path string) (net.Listener, error) {
	ln, err := net.Listen("unix", path)
	if err == nil {
		return ln, nil
	}
	fi, statErr := os.Lstat(path)
	if statErr != nil || fi.Mode()&os.ModeSocket == 0 {
		return nil, err
	}
	if probe, dialErr := net.DialTimeout("unix", path, 500*time.Millisecond); dialErr == nil {
		probe.Close()
		return nil, fmt.Errorf("socket is in use by a live listener: %w", err)
	}
	if rmErr := os.Remove(path); rmErr != nil {
		return nil, fmt.Errorf("removing stale socket: %w", rmErr)
	}
	return net.Listen("unix", path)
}
