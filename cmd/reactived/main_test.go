package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon with a random port and returns its base URL
// plus a cancel that triggers graceful shutdown and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, shutdown func() error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extraArgs...)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, os.Stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(b) > 0 {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return base, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(20 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

func TestRunServesAndShutsDownCleanly(t *testing.T) {
	snapDir := filepath.Join(t.TempDir(), "snaps")
	base, shutdown := startDaemon(t, "-snapshot-dir", snapDir, "-snapshot-interval", "0")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("run returned %v on graceful shutdown", err)
	}
	// Shutdown with a snapshot dir writes a final snapshot.
	if _, err := os.Stat(filepath.Join(snapDir, "current.snap")); err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
}

func TestRunDebugListener(t *testing.T) {
	debugAddrFile := filepath.Join(t.TempDir(), "debug-addr")
	_, shutdown := startDaemon(t,
		"-debug-addr", "127.0.0.1:0",
		"-debug-addr-file", debugAddrFile)

	deadline := time.Now().Add(10 * time.Second)
	var debugBase string
	for {
		b, err := os.ReadFile(debugAddrFile)
		if err == nil && len(b) > 0 {
			debugBase = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its debug address file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The profiling surface: the pprof index and expvar must answer on
	// the debug listener.
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(debugBase + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), `"reactived"`) {
			t.Fatalf("/debug/vars missing the reactived variable:\n%s", body)
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("run returned %v on graceful shutdown", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-addr", "not a listen address"},
		{"positional"},
	} {
		if err := run(context.Background(), args, os.Stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
