package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reactivespec/internal/server"
	"reactivespec/internal/trace"
)

// startDaemon runs the daemon with a random port and returns its base URL
// plus a cancel that triggers graceful shutdown and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, shutdown func() error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extraArgs...)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, os.Stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(b) > 0 {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return base, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(20 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

func TestRunServesAndShutsDownCleanly(t *testing.T) {
	snapDir := filepath.Join(t.TempDir(), "snaps")
	base, shutdown := startDaemon(t, "-snapshot-dir", snapDir, "-snapshot-interval", "0")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("run returned %v on graceful shutdown", err)
	}
	// Shutdown with a snapshot dir writes a final snapshot.
	if _, err := os.Stat(filepath.Join(snapDir, "current.snap")); err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
}

func TestRunDebugListener(t *testing.T) {
	debugAddrFile := filepath.Join(t.TempDir(), "debug-addr")
	_, shutdown := startDaemon(t,
		"-debug-addr", "127.0.0.1:0",
		"-debug-addr-file", debugAddrFile)

	deadline := time.Now().Add(10 * time.Second)
	var debugBase string
	for {
		b, err := os.ReadFile(debugAddrFile)
		if err == nil && len(b) > 0 {
			debugBase = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its debug address file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The profiling surface: the pprof index and expvar must answer on
	// the debug listener.
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(debugBase + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), `"reactived"`) {
			t.Fatalf("/debug/vars missing the reactived variable:\n%s", body)
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("run returned %v on graceful shutdown", err)
	}
}

// TestRunStreamListener exercises the raw -stream-addr listener end to end:
// a session ingests over it, and a graceful shutdown terminates the session
// with a typed draining error rather than a connection reset.
func TestRunStreamListener(t *testing.T) {
	streamAddrFile := filepath.Join(t.TempDir(), "stream-addr")
	base, shutdown := startDaemon(t,
		"-stream-addr", "127.0.0.1:0",
		"-stream-addr-file", streamAddrFile)

	deadline := time.Now().Add(10 * time.Second)
	var streamAddr string
	for {
		b, err := os.ReadFile(streamAddrFile)
		if err == nil && len(b) > 0 {
			streamAddr = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its stream address file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx := context.Background()
	c := server.Connect(base)
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := server.ParseInfoParamsHash(info)
	if err != nil {
		t.Fatal(err)
	}
	st, err := server.DialStream(ctx, streamAddr, "p", hash)
	if err != nil {
		t.Fatalf("DialStream: %v", err)
	}
	evs := make([]trace.Event, 200)
	for i := range evs {
		evs[i] = trace.Event{Branch: trace.BranchID(i % 8), Taken: i%3 == 0, Gap: 5}
	}
	if err := st.Send(ctx, evs); err != nil {
		t.Fatal(err)
	}
	ds, err := st.Recv(ctx)
	if err != nil || len(ds) != len(evs) {
		t.Fatalf("Recv = %d decisions, %v; want %d", len(ds), err, len(evs))
	}

	// Graceful shutdown with the session still open: the daemon must drain
	// it (typed terminal) and still exit cleanly.
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- shutdown() }()
	recvCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := st.Recv(recvCtx); !errors.Is(err, server.ErrDraining) {
		t.Fatalf("Recv during shutdown = %v, want ErrDraining", err)
	}
	st.Close()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("run returned %v on graceful shutdown", err)
	}
}

// TestRunStreamUnixListener exercises the unix-domain stream listener end to
// end: the daemon writes the dial target to -stream-unix-file, a session
// ingests over the socket, and graceful shutdown unlinks the socket file.
func TestRunStreamUnixListener(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")
	sockFile := filepath.Join(dir, "stream-unix")
	base, shutdown := startDaemon(t,
		"-stream-unix", sock,
		"-stream-unix-file", sockFile)

	deadline := time.Now().Add(10 * time.Second)
	var target string
	for {
		b, err := os.ReadFile(sockFile)
		if err == nil && len(b) > 0 {
			target = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its unix stream target file")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if target != "unix://"+sock {
		t.Fatalf("stream-unix-file = %q, want %q", target, "unix://"+sock)
	}

	ctx := context.Background()
	c := server.Connect(base)
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := server.ParseInfoParamsHash(info)
	if err != nil {
		t.Fatal(err)
	}
	st, err := server.DialStream(ctx, target, "p", hash)
	if err != nil {
		t.Fatalf("DialStream(%q): %v", target, err)
	}
	evs := make([]trace.Event, 200)
	for i := range evs {
		evs[i] = trace.Event{Branch: trace.BranchID(i % 8), Taken: i%3 == 0, Gap: 5}
	}
	if err := st.Send(ctx, evs); err != nil {
		t.Fatal(err)
	}
	ds, err := st.Recv(ctx)
	if err != nil || len(ds) != len(evs) {
		t.Fatalf("Recv = %d decisions, %v; want %d", len(ds), err, len(evs))
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("run returned %v on graceful shutdown", err)
	}
	// Graceful shutdown unlinks the socket file.
	if _, err := os.Lstat(sock); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("socket file still present after shutdown: Lstat err = %v", err)
	}
}

// TestRunStreamUnixReusesStalePath pins crash recovery: a socket file left
// behind by a killed daemon (nothing listening) must not block a restart on
// the same path.
func TestRunStreamUnixReusesStalePath(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "stale.sock")
	// Fabricate the crash artifact: bind, suppress the unlink, close. The
	// file remains with no listener behind it — exactly what SIGKILL leaves.
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close()
	if _, err := os.Lstat(sock); err != nil {
		t.Fatalf("stale socket file missing before the restart: %v", err)
	}

	base, shutdown := startDaemon(t, "-stream-unix", sock)
	defer shutdown()

	ctx := context.Background()
	c := server.Connect(base)
	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := server.ParseInfoParamsHash(info)
	if err != nil {
		t.Fatal(err)
	}
	st, err := server.DialStream(ctx, "unix://"+sock, "p", hash)
	if err != nil {
		t.Fatalf("DialStream after stale-socket recovery: %v", err)
	}
	if err := st.Send(ctx, []trace.Event{{Branch: 1, Taken: true, Gap: 3}}); err != nil {
		t.Fatal(err)
	}
	if ds, err := st.Recv(ctx); err != nil || len(ds) != 1 {
		t.Fatalf("Recv = %d decisions, %v; want 1", len(ds), err)
	}
	st.Close()
}

// TestListenUnixStreamGuards covers the two refusals: a path held by a live
// listener, and a path occupied by a non-socket file (never touched).
func TestListenUnixStreamGuards(t *testing.T) {
	dir := t.TempDir()

	live := filepath.Join(dir, "live.sock")
	ln, err := net.Listen("unix", live)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := listenUnixStream(live); err == nil {
		t.Fatal("listenUnixStream stole a live listener's socket")
	}

	file := filepath.Join(dir, "not-a-socket")
	if err := os.WriteFile(file, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := listenUnixStream(file); err == nil {
		t.Fatal("listenUnixStream bound over a regular file")
	}
	if b, err := os.ReadFile(file); err != nil || string(b) != "data" {
		t.Fatalf("listenUnixStream touched a non-socket file: %q, %v", b, err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-addr", "not a listen address"},
		{"positional"},
	} {
		if err := run(context.Background(), args, os.Stderr); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
