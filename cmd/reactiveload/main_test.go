package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/server"
)

// testDaemon serves a real server.Server over httptest with the default
// reactiveload parameter scale so -verify can mirror it.
func testDaemon(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{Params: core.DefaultParams().Scaled(10), Shards: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunVerifiedLoad(t *testing.T) {
	base := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-bench", "gzip",
		"-scale", "0.01",
		"-concurrency", "3",
		"-batch", "512",
		"-verify",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if rep.Events == 0 || rep.Batches == 0 {
		t.Fatalf("empty run: %+v", rep)
	}
	if !rep.Verified {
		t.Fatal("report not marked verified")
	}
	if rep.EventsPerS <= 0 || rep.BatchP50Ms <= 0 || rep.BatchP99Ms < rep.BatchP50Ms {
		t.Fatalf("implausible rates: %+v", rep)
	}
	var verdictTotal uint64
	for _, n := range rep.Verdicts {
		verdictTotal += n
	}
	if verdictTotal != rep.Events {
		t.Fatalf("verdict counts sum to %d, want %d", verdictTotal, rep.Events)
	}
	// The per-phase breakdown must cover all three client phases with
	// plausible (positive, ordered) quantiles.
	for _, name := range []string{"encode", "network", "decode"} {
		p, ok := rep.Phases[name]
		if !ok {
			t.Fatalf("phase %q missing from report: %+v", name, rep.Phases)
		}
		if p.P50Ms <= 0 || p.P99Ms < p.P50Ms {
			t.Fatalf("phase %q has implausible quantiles: %+v", name, p)
		}
	}
	// The network phase contains the server round trip, so it dominates
	// the pure-CPU encode phase.
	if rep.Phases["network"].P50Ms < rep.Phases["encode"].P50Ms {
		t.Fatalf("network p50 %v < encode p50 %v", rep.Phases["network"].P50Ms, rep.Phases["encode"].P50Ms)
	}
}

func TestRunDumpMetrics(t *testing.T) {
	base := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-events", "2000",
		"-concurrency", "1",
		"-batch", "500",
		"-dump-metrics",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// -dump-metrics goes to stderr (not capturable here without process
	// plumbing); the JSON report on out must still be intact.
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output not JSON with -dump-metrics: %v", err)
	}
}

func TestRunVerifyDetectsParamMismatch(t *testing.T) {
	base := testDaemon(t) // daemon runs at scale 10
	var out bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-scale", "0.01",
		"-concurrency", "1",
		"-param-scale", "1", // mirror at full Table 2 parameters
		"-verify",
	}, &out)
	// The /v1/info params-hash precheck rejects the pairing before a single
	// event is sent, with the typed sentinel rather than a mid-run
	// decision-by-decision diff.
	if !errors.Is(err, server.ErrParamsMismatch) {
		t.Fatalf("err = %v, want ErrParamsMismatch", err)
	}
}

// TestRunStreamVerifiedLoad drives -stream end to end with verification:
// every decision received over the session must match the in-process mirror,
// which transitively pins stream decisions to the POST path (the mirror is
// the same controller the POST equivalence tests check against).
func TestRunStreamVerifiedLoad(t *testing.T) {
	base := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-bench", "gzip",
		"-scale", "0.01",
		"-concurrency", "2",
		"-batch", "512",
		"-stream",
		"-window", "4",
		"-verify",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if rep.Mode != "stream" {
		t.Fatalf("mode = %q, want stream", rep.Mode)
	}
	if rep.Window != 4 {
		t.Fatalf("window = %d, want 4", rep.Window)
	}
	if rep.Events == 0 || !rep.Verified {
		t.Fatalf("empty or unverified run: %+v", rep)
	}
	var verdictTotal uint64
	for _, n := range rep.Verdicts {
		verdictTotal += n
	}
	if verdictTotal != rep.Events {
		t.Fatalf("verdict counts sum to %d, want %d", verdictTotal, rep.Events)
	}
	if len(rep.Phases) != 0 {
		t.Fatalf("stream mode reported POST phase breakdown: %+v", rep.Phases)
	}
}

// TestRunStreamMatchesPostTallies runs the identical seeded workload in both
// modes against fresh daemons: the aggregate verdict and decision tallies
// must agree exactly.
func TestRunStreamMatchesPostTallies(t *testing.T) {
	args := func(base string, extra ...string) []string {
		return append([]string{
			"-addr", base,
			"-bench", "gzip",
			"-scale", "0.01",
			"-concurrency", "2",
			"-batch", "256",
			"-seed", "42",
		}, extra...)
	}
	var postOut, streamOut bytes.Buffer
	if err := run(args(testDaemon(t)), &postOut); err != nil {
		t.Fatal(err)
	}
	if err := run(args(testDaemon(t), "-stream"), &streamOut); err != nil {
		t.Fatal(err)
	}
	var post, stream Report
	if err := json.Unmarshal(postOut.Bytes(), &post); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(streamOut.Bytes(), &stream); err != nil {
		t.Fatal(err)
	}
	if post.Events != stream.Events {
		t.Fatalf("events: post %d, stream %d", post.Events, stream.Events)
	}
	if !reflect.DeepEqual(post.Verdicts, stream.Verdicts) {
		t.Fatalf("verdicts differ: post %v, stream %v", post.Verdicts, stream.Verdicts)
	}
	if !reflect.DeepEqual(post.Decisions, stream.Decisions) {
		t.Fatalf("decisions differ: post %v, stream %v", post.Decisions, stream.Decisions)
	}
}

func TestRunStreamRejectsFramesFlag(t *testing.T) {
	err := run([]string{"-addr", "http://127.0.0.1:1", "-stream", "-frames", "2"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-frames") {
		t.Fatalf("err = %v, want -frames conflict", err)
	}
}

func TestRunWithFaultsAndEventCap(t *testing.T) {
	base := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-events", "3000",
		"-concurrency", "2",
		"-batch", "256",
		"-intensity", "0.5",
		"-verify",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// Faults drop and duplicate events, so the cap bounds but does not pin
	// the count; it must still be near 2 workers x 3000.
	if rep.Events == 0 || rep.Events > 6000 {
		t.Fatalf("events = %d, want (0, 6000]", rep.Events)
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                                    // missing -addr
		{"-addr", "http://x", "-input", "zz"}, // bad input
		{"-addr", "http://x", "-bench", "nope"},
		{"-addr", "http://x", "-concurrency", "0"},
		{"-addr", "http://x", "-intensity", "1.5"},
		{"-addr", "http://x", "positional"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunUnreachableDaemon(t *testing.T) {
	err := run([]string{"-addr", "http://127.0.0.1:1"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Fatalf("err = %v, want not-reachable", err)
	}
}
