// Command reactiveload is a seeded load generator for reactived: it replays
// the calibrated synthetic workloads (internal/workload), optionally
// perturbed by the fault injectors (internal/faults), against a running
// daemon at configurable concurrency and batch size, and reports throughput
// and batch-latency quantiles as JSON for regression tracking.
//
// Each worker drives its own program stream ("<bench>@<worker>"), so workers
// never contend on a program cursor and the daemon's decision sequence per
// program is deterministic. With -kind, workers round-robin over the listed
// speculation kinds (worker w drives kinds[w mod len]), exercising the
// daemon's kind-generic serving path: branch events ride the v1 wire
// unchanged, other kinds go through /v2 (POST mode) or proto-4 kind-tagged
// frames (stream mode). With -verify, every worker simultaneously runs an
// in-process policy set (-policy selects which) over the identical event
// sequence and fails if any networked decision differs — the end-to-end
// closed-loop equivalence check, per kind. Verification first checks the
// daemon's controller-parameter hash, served kinds, and policy against
// /v1/info, so a misconfigured pairing fails up front with a typed mismatch
// instead of diverging mid-run.
//
// With -stream, workers replace per-batch POSTs with one streaming ingest
// session each (POST /v1/stream upgrade, or a raw -stream-addr listener):
// batches pipeline over the session up to the granted window, and decisions
// come back on the same connection. Decisions are byte-identical to POST
// ingest — -verify works identically in both modes.
//
// With -failover, the run verifies a primary→replica failover end to end:
// workers drive the primary until it dies (SIGKILLed by this process once
// -failover-after-batches batches are acked when -failover-pid is set, or
// crashed externally), then one worker promotes the named follower (POST
// /v1/promote, retried), every worker asks it how many of its events were
// replicated (/v1/cursor), and the stream resumes from exactly that point.
// Each worker's mirror decisions are precomputed at absolute stream indices,
// so decisions from before the crash, re-sent overlap, and the post-failover
// tail all verify against the same uncrashed in-process control — the
// bitwise-equivalence claim of the replication subsystem. The run fails if
// the primary survives to the end (the crash never happened, so failover was
// never exercised).
//
// Usage:
//
//	reactiveload -addr http://127.0.0.1:8344 [flags]
//
// Flags:
//
//	-addr url        daemon base URL (required)
//	-bench name      workload model to replay (default gzip)
//	-input id        workload input: eval or profile (default eval)
//	-scale f         event-count scale relative to the calibrated default (default 0.05)
//	-events n        hard cap on events per worker (0 = the scaled spec length)
//	-concurrency n   parallel workers (default 4)
//	-batch n         events per ingest batch (default 1024)
//	-frames n        trace frames per batch; events split contiguously (default 1)
//	-seed n          workload seed base; worker w uses seed+w (default 0)
//	-kind list       comma-separated speculation kinds; worker w drives kinds[w mod len]
//	                 (default branch; see trace.KindNames)
//	-policy name     decision policy the daemon runs, for -verify mirroring (default reactive)
//	-intensity f     fault-injection intensity in [0,1] (default 0)
//	-param-scale k   controller parameter scale for -verify; must match the daemon (default 10)
//	-verify          cross-check every decision against an in-process policy set
//	-stream          use streaming ingest sessions instead of per-batch POSTs
//	-window n        requested stream pipeline window in frames (0 = server default)
//	-decisions e     stream decision-frame encoding: rle (default), plain or change
//	-stream-addr a   dial the daemon's raw stream listener instead of upgrading over HTTP;
//	                 accepts host:port or unix:///path/to.sock
//	-preencode       generate + encode every batch before the timed run (stream modes only),
//	                 so the measurement isolates transport and serving cost
//	-failover url            follower base URL: verify failover by resuming against it (implies -verify)
//	-failover-pid n          primary pid to SIGKILL once the batch threshold is acked
//	-failover-after-batches n  acked batches across all workers before the kill
//	-dump-metrics    write the load generator's own metrics registry (Prometheus text) to stderr
//	-trace-spans f   append sampled client-side span records (JSONL) to f; implies -trace-sample 1
//	-trace-sample n  sample 1 in n ingest batches for span tracing (0 = off)
//	-failover-debug url  primary -debug-addr base URL; with -dump-metrics, its replication
//	                 expvars (follower lag) are snapshotted at kill time and echoed to stderr
//
// All latency accounting flows through one internal/obs registry: the JSON
// report's batch quantiles and its per-phase encode / network / decode
// breakdown are read back from the registry's histograms, and -dump-metrics
// exposes the registry itself. In stream mode the per-phase breakdown is
// absent (a pipelined session has no per-batch round trip to dissect); batch
// latency measures send-to-decision time per frame.
//
// Exit status: 0 on success, 1 on transport errors or verification failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"reactivespec/internal/core"
	"reactivespec/internal/faults"
	"reactivespec/internal/obs"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// Report is the JSON result written to stdout.
type Report struct {
	Benchmark     string  `json:"benchmark"`
	Input         string  `json:"input"`
	Mode          string  `json:"mode"` // "post", "stream" or "failover"
	Concurrency   int     `json:"concurrency"`
	Batch         int     `json:"batch"`
	Frames        int     `json:"frames_per_batch"`
	Window        int     `json:"window,omitempty"`           // granted stream window
	DecisionsWire string  `json:"stream_decisions,omitempty"` // requested decision-frame encoding (stream modes)
	Preencode     bool    `json:"preencode,omitempty"`        // batches were encoded before the timed run
	Intensity     float64 `json:"intensity"`
	Verified      bool    `json:"verified"`

	// Kinds lists the speculation kinds workers drove (round-robin by
	// worker index); Policy names the decision policy the -verify mirror
	// ran. Absent when the run was plain kind=branch / reactive.
	Kinds  []string `json:"kinds,omitempty"`
	Policy string   `json:"policy,omitempty"`

	Events     uint64  `json:"events"`
	Batches    uint64  `json:"batches"`
	ElapsedSec float64 `json:"elapsed_sec"`
	EventsPerS float64 `json:"events_per_sec"`

	BatchP50Ms float64 `json:"batch_latency_p50_ms"`
	BatchP90Ms float64 `json:"batch_latency_p90_ms"`
	BatchP99Ms float64 `json:"batch_latency_p99_ms"`

	// Phases breaks batch latency into client-side phases ("encode",
	// "network", "decode"), sourced from the obs registry histograms.
	// Empty in stream mode.
	Phases map[string]PhaseLatency `json:"phase_latency_ms,omitempty"`

	Verdicts  map[string]uint64 `json:"verdicts"`
	Decisions map[string]uint64 `json:"decisions"`

	// Failover describes the primary crash and the resume against the
	// promoted follower. Present only in -failover mode.
	Failover *FailoverReport `json:"failover,omitempty"`
}

// PhaseLatency is one phase's latency quantiles in milliseconds.
type PhaseLatency struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// instruments is the load generator's metrics registry: the batch-latency
// summary plus one histogram per ingest phase, shared by all workers.
type instruments struct {
	reg     *obs.Registry
	events  *obs.Counter
	batches *obs.Counter
	batch   *obs.Histogram
	encode  *obs.Histogram
	network *obs.Histogram
	decode  *obs.Histogram
}

func newInstruments() *instruments {
	reg := obs.NewRegistry()
	lat := func(name, help string) *obs.Histogram {
		return reg.NewHistogram(name, help, 1e-6, 60, 30, 0.5, 0.9, 0.99)
	}
	return &instruments{
		reg:     reg,
		events:  reg.NewCounter("reactiveload_events_total", "Events sent to the daemon."),
		batches: reg.NewCounter("reactiveload_batches_total", "Ingest batches sent."),
		batch:   lat("reactiveload_batch_seconds", "Ingest batch round-trip latency."),
		encode:  lat("reactiveload_encode_seconds", "Client time encoding trace frames."),
		network: lat("reactiveload_network_seconds", "HTTP round trip, including reading the response body."),
		decode:  lat("reactiveload_decode_seconds", "Client time decoding decision bytes."),
	}
}

// phase reads one histogram back as millisecond quantiles.
func phase(h *obs.Histogram) PhaseLatency {
	return PhaseLatency{
		P50Ms: h.Quantile(0.5) * 1e3,
		P90Ms: h.Quantile(0.9) * 1e3,
		P99Ms: h.Quantile(0.99) * 1e3,
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reactiveload:", err)
		os.Exit(1)
	}
}

// workerResult is one worker's contribution to the report.
type workerResult struct {
	events    uint64
	batches   uint64
	window    int       // granted stream window (stream mode)
	verdicts  [3]uint64 // indexed by core.Verdict
	decisions [4]uint64 // indexed by core.State
	err       error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reactiveload", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", "", "daemon base URL (required), e.g. http://127.0.0.1:8344")
	bench := fs.String("bench", "gzip", "workload model to replay")
	input := fs.String("input", "eval", `workload input: "eval" or "profile"`)
	scale := fs.Float64("scale", 0.05, "event-count scale relative to the calibrated default")
	events := fs.Uint64("events", 0, "hard cap on events per worker (0 = the scaled spec length)")
	concurrency := fs.Int("concurrency", 4, "parallel workers")
	batch := fs.Int("batch", 1024, "events per ingest batch")
	frames := fs.Int("frames", 1, "trace frames per batch; events split contiguously")
	seed := fs.Uint64("seed", 0, "workload seed base; worker w uses seed+w")
	kindList := fs.String("kind", trace.KindBranch.String(),
		"comma-separated speculation kinds; worker w drives kinds[w mod len]")
	policy := fs.String("policy", core.PolicyReactive,
		"decision policy the daemon runs, for -verify mirroring")
	intensity := fs.Float64("intensity", 0, "fault-injection intensity in [0,1]")
	paramScale := fs.Uint64("param-scale", 10, "controller parameter scale for -verify (must match the daemon)")
	verify := fs.Bool("verify", false, "cross-check every decision against an in-process controller")
	streamMode := fs.Bool("stream", false, "use streaming ingest sessions instead of per-batch POSTs")
	window := fs.Int("window", 0, "requested stream pipeline window in frames (0 = server default)")
	decisionsMode := fs.String("decisions", "rle",
		"stream decision-frame encoding: rle, plain or change (stream modes only)")
	streamAddr := fs.String("stream-addr", "",
		"dial the daemon's raw stream listener at this address instead of upgrading over HTTP (implies -stream)")
	preencode := fs.Bool("preencode", false,
		"generate and encode every batch before the timed run (stream modes only): the measured loop ships ready wire frames, isolating transport and serving cost from workload generation")
	failoverURL := fs.String("failover", "",
		"follower base URL: verify failover by promoting it when the primary dies and resuming against it (implies -verify)")
	failoverPid := fs.Int("failover-pid", 0,
		"primary daemon pid to SIGKILL once -failover-after-batches batches are acked (0 = the primary is crashed externally)")
	failoverAfter := fs.Uint64("failover-after-batches", 0,
		"acked batches across all workers before -failover-pid is killed")
	dumpMetrics := fs.Bool("dump-metrics", false,
		"write the load generator's own metrics registry (Prometheus text) to stderr after the run")
	traceSpans := fs.String("trace-spans", "",
		"append sampled client-side span records (JSONL) to this file; implies -trace-sample 1 unless set")
	traceSample := fs.Int("trace-sample", 0,
		"sample 1 in N ingest batches for span tracing (0 = off)")
	failoverDebug := fs.String("failover-debug", "",
		"primary debug base URL (reactived -debug-addr): snapshot its replication expvars at kill time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *concurrency < 1 || *batch < 1 || *frames < 1 {
		return fmt.Errorf("-concurrency, -batch and -frames must be at least 1")
	}
	if *intensity < 0 || *intensity > 1 {
		return fmt.Errorf("-intensity %v outside [0, 1]", *intensity)
	}
	if *window < 0 {
		return fmt.Errorf("-window must be non-negative")
	}
	var kinds []trace.Kind
	for _, name := range strings.Split(*kindList, ",") {
		k, err := trace.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return fmt.Errorf("-kind: %w", err)
		}
		kinds = append(kinds, k)
	}
	if !core.ValidPolicy(*policy) {
		return fmt.Errorf("-policy %q is not registered (want one of %v)", *policy, core.PolicyNames())
	}
	if *streamAddr != "" {
		*streamMode = true
	}
	var streamDecisions server.StreamDecisions
	switch *decisionsMode {
	case "rle":
		streamDecisions = server.StreamDecisionsRLE
	case "plain":
		streamDecisions = server.StreamDecisionsPlain
	case "change":
		streamDecisions = server.StreamDecisionsChangeOnly
	default:
		return fmt.Errorf("unknown -decisions %q (want rle, plain or change)", *decisionsMode)
	}
	if *frames != 1 && *streamMode {
		return fmt.Errorf("-frames does not apply to -stream (each batch is one frame on the session)")
	}
	if *preencode && !*streamMode {
		return fmt.Errorf("-preencode applies to stream modes only")
	}
	if *failoverURL == "" && (*failoverPid != 0 || *failoverAfter != 0) {
		return fmt.Errorf("-failover-pid and -failover-after-batches require -failover")
	}
	if *failoverURL != "" {
		if *streamMode {
			return fmt.Errorf("-failover drives per-batch POSTs; it does not combine with -stream")
		}
		if *frames != 1 {
			return fmt.Errorf("-frames does not apply to -failover")
		}
		if *failoverPid > 0 && *failoverAfter == 0 {
			return fmt.Errorf("-failover-pid requires -failover-after-batches > 0 (when should the primary die?)")
		}
		for _, k := range kinds {
			if k != trace.KindBranch {
				return fmt.Errorf("-failover resumes from the /v1 cursor, which tracks branch streams; it does not combine with -kind %s", k)
			}
		}
		*verify = true
	}
	if *failoverDebug != "" && *failoverPid == 0 {
		return fmt.Errorf("-failover-debug snapshots the primary at kill time; it requires -failover-pid")
	}
	if *traceSample < 0 {
		return fmt.Errorf("-trace-sample must be non-negative")
	}
	var inputID workload.InputID
	switch *input {
	case "eval":
		inputID = workload.InputEval
	case "profile":
		inputID = workload.InputProfile
	default:
		return fmt.Errorf("unknown -input %q (want eval or profile)", *input)
	}
	if _, err := workload.Build(*bench, inputID, workload.Options{}); err != nil {
		return err
	}
	ctx := context.Background()
	params := core.DefaultParams().Scaled(*paramScale)
	sampleN := *traceSample
	if *traceSpans != "" && sampleN == 0 {
		sampleN = 1
	}
	var tracer *obs.Tracer
	if sampleN > 0 {
		tracer = obs.NewTracer("loadgen", sampleN)
		if *traceSpans != "" {
			f, err := os.OpenFile(*traceSpans, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("opening -trace-spans: %w", err)
			}
			defer f.Close()
			tracer.SetOutput(f)
			defer tracer.Close()
		}
	}
	client := server.Connect(*addr, server.WithTracer(tracer))
	if _, err := client.Healthz(ctx); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", *addr, err)
	}
	if *verify {
		// Fail configuration skew up front: a daemon at a different
		// -param-scale or -policy would diverge from the mirror on the
		// first monitoring-period boundary anyway, and a kind the daemon
		// does not serve would fail mid-run. The /v1/info advertisement
		// checks fire first so the operator sees "kind/policy" rather
		// than a bare hash mismatch.
		info, err := client.Info(ctx)
		if err != nil {
			return err
		}
		if err := checkInfoKindsPolicy(info, kinds, *policy); err != nil {
			return err
		}
		if _, err := client.VerifyParams(ctx, server.ParamsPolicyHash(params, *policy)); err != nil {
			return err
		}
	}
	var fc *failoverCtl
	if *failoverURL != "" {
		follower := server.Connect(*failoverURL, server.WithTracer(tracer))
		if _, err := follower.Healthz(ctx); err != nil {
			return fmt.Errorf("follower not reachable at %s: %w", *failoverURL, err)
		}
		if _, err := follower.VerifyParams(ctx, server.ParamsPolicyHash(params, *policy)); err != nil {
			return fmt.Errorf("follower at %s: %w", *failoverURL, err)
		}
		info, err := follower.Info(ctx)
		if err != nil {
			return fmt.Errorf("follower at %s: %w", *failoverURL, err)
		}
		if info.Mode != "replica" {
			return fmt.Errorf("-failover target %s is %q, not a replica — it has nothing to promote", *failoverURL, info.Mode)
		}
		fc = newFailoverCtl(follower, *failoverPid, *failoverAfter)
		fc.debugURL = *failoverDebug
	}

	ins := newInstruments()
	results := make([]workerResult, *concurrency)
	cfgs := make([]workerConfig, *concurrency)
	for w := range cfgs {
		cfgs[w] = workerConfig{
			program:    fmt.Sprintf("%s@%d", *bench, w),
			bench:      *bench,
			input:      inputID,
			scale:      *scale,
			events:     *events,
			batch:      *batch,
			frames:     *frames,
			seed:       *seed + uint64(w),
			kind:       kinds[w%len(kinds)],
			policy:     *policy,
			intensity:  *intensity,
			params:     params,
			verify:     *verify,
			window:     *window,
			streamAddr: *streamAddr,
			decisions:  streamDecisions,
			tracer:     tracer,
		}
	}
	if *preencode {
		// Materialize every worker's batches and their wire frames outside
		// the timed section, so elapsed measures transport + serving only.
		for w := range cfgs {
			pre, err := prebuildBatches(cfgs[w])
			if err != nil {
				return err
			}
			cfgs[w].pre = pre
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := cfgs[w]
			switch {
			case fc != nil:
				results[w] = runFailoverWorker(ctx, client, ins, cfg, fc)
			case *streamMode:
				results[w] = runStreamWorker(ctx, client, ins, cfg)
			default:
				results[w] = runWorker(ctx, client, ins, cfg)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	mode := "post"
	if *streamMode {
		mode = "stream"
	}
	if fc != nil {
		mode = "failover"
	}
	rep := Report{
		Benchmark:   *bench,
		Input:       inputID.String(),
		Mode:        mode,
		Concurrency: *concurrency,
		Batch:       *batch,
		Frames:      *frames,
		Intensity:   *intensity,
		Verified:    *verify,
		ElapsedSec:  elapsed.Seconds(),
		Verdicts:    map[string]uint64{},
		Decisions:   map[string]uint64{},
	}
	if *streamMode {
		rep.DecisionsWire = *decisionsMode
		rep.Preencode = *preencode
	}
	if len(kinds) > 1 || kinds[0] != trace.KindBranch {
		for _, k := range kinds {
			rep.Kinds = append(rep.Kinds, k.String())
		}
	}
	if *policy != core.PolicyReactive {
		rep.Policy = *policy
	}
	for w, r := range results {
		if r.err != nil {
			return fmt.Errorf("worker %d: %w", w, r.err)
		}
		rep.Events += r.events
		rep.Batches += r.batches
		if r.window > rep.Window {
			rep.Window = r.window
		}
		for v, n := range r.verdicts {
			rep.Verdicts[core.Verdict(v).String()] += n
		}
		for st, n := range r.decisions {
			rep.Decisions[core.State(st).String()] += n
		}
	}
	if fc != nil {
		if fc.resumed.Load() == 0 {
			return fmt.Errorf("the primary survived the whole run, so failover was never exercised " +
				"(grow the workload, or lower -failover-after-batches)")
		}
		rep.Failover = &FailoverReport{
			Promoted:        true,
			KilledAtBatches: fc.killedAt.Load(),
			PromotedWalSeq:  fc.res.LastAppliedSeq,
			WorkersResumed:  int(fc.resumed.Load()),
			ResentEvents:    fc.resent.Load(),
		}
	}
	if elapsed > 0 {
		rep.EventsPerS = float64(rep.Events) / elapsed.Seconds()
	}
	rep.BatchP50Ms = ins.batch.Quantile(0.5) * 1e3
	rep.BatchP90Ms = ins.batch.Quantile(0.9) * 1e3
	rep.BatchP99Ms = ins.batch.Quantile(0.99) * 1e3
	if !*streamMode {
		rep.Phases = map[string]PhaseLatency{
			"encode":  phase(ins.encode),
			"network": phase(ins.network),
			"decode":  phase(ins.decode),
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *dumpMetrics {
		if fc != nil && fc.debugURL != "" {
			switch {
			case fc.debugErr != nil:
				fmt.Fprintf(os.Stderr, "# failover-debug: snapshotting %s at kill time: %v\n", fc.debugURL, fc.debugErr)
			case len(fc.debugVars) > 0:
				fmt.Fprintf(os.Stderr, "# primary replication expvars at kill time (%s):\n# %s\n", fc.debugURL, fc.debugVars)
			}
		}
		return ins.reg.WritePrometheus(os.Stderr)
	}
	return nil
}

type workerConfig struct {
	program    string
	bench      string
	input      workload.InputID
	scale      float64
	events     uint64
	batch      int
	frames     int
	seed       uint64
	kind       trace.Kind
	policy     string
	intensity  float64
	params     core.Params
	verify     bool
	window     int
	streamAddr string
	decisions  server.StreamDecisions
	tracer     *obs.Tracer
	pre        *prebuilt // non-nil under -preencode
}

// prebuilt is one worker's pre-generated workload: the event batches and
// their encoded wire frames, built before the timed run starts.
type prebuilt struct {
	batches [][]trace.Event
	frames  [][]byte
}

// prebuildBatches materializes a worker's entire seeded event stream into
// batch-sized chunks and encodes each one into the exact frame payload
// Stream.Send would produce.
func prebuildBatches(cfg workerConfig) (*prebuilt, error) {
	stream, err := buildEventStream(cfg)
	if err != nil {
		return nil, err
	}
	pre := &prebuilt{}
	batch := make([]trace.Event, 0, cfg.batch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		evs := make([]trace.Event, len(batch))
		copy(evs, batch)
		pre.batches = append(pre.batches, evs)
		pre.frames = append(pre.frames, trace.EncodeFrameAppend(nil, evs))
		batch = batch[:0]
	}
	for {
		ev, ok := stream.Next()
		if !ok {
			break
		}
		batch = append(batch, ev)
		if len(batch) == cfg.batch {
			flush()
		}
	}
	flush()
	return pre, nil
}

// buildEventStream assembles one worker's seeded event source: workload
// generator, optional fault injection, optional event cap.
func buildEventStream(cfg workerConfig) (trace.Stream, error) {
	spec, err := workload.Build(cfg.bench, cfg.input, workload.Options{
		EventScale: workload.DefaultEventScale * cfg.scale,
		Seed:       cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	var stream trace.Stream = workload.NewGenerator(spec)
	if cfg.intensity > 0 {
		mix := faults.IntensityMix(cfg.intensity, spec.Events,
			trace.BranchID(len(spec.Branches)), spec.Seed^0x10adc1e4)
		stream = mix.Apply(stream, spec.Events)
	}
	if cfg.events > 0 {
		stream = trace.Head(stream, cfg.events)
	}
	return stream, nil
}

// mirror is the -verify cross-check: an in-process policy set fed the
// identical event sequence, compared decision-by-decision against the
// daemon. A nil *mirror checks nothing.
type mirror struct {
	set    *core.PolicySet
	instr  uint64
	seen   uint64
	params core.Params
	prog   string
	kind   trace.Kind
}

func newMirror(cfg workerConfig) (*mirror, error) {
	if !cfg.verify {
		return nil, nil
	}
	set, err := core.NewPolicySet(cfg.policy, cfg.params)
	if err != nil {
		return nil, err
	}
	return &mirror{set: set, params: cfg.params, prog: cfg.program, kind: cfg.kind}, nil
}

// check replays events through the mirror policy set and compares the
// daemon's decisions. events and ds are parallel.
func (m *mirror) check(events []trace.Event, ds []server.Decision) error {
	if m == nil {
		return nil
	}
	for i, ev := range events {
		m.instr += uint64(ev.Gap)
		v, st, dir, live := m.set.OnEvent(ev.Branch, ev.Taken, m.instr)
		want := server.Decision{Verdict: v, State: st, Dir: dir, Live: live}
		if ds[i] != want {
			return fmt.Errorf("decision mismatch at event %d of %s kind %s (unit %d): daemon %v, in-process %v"+
				" (is the daemon running with -param-scale %d and -policy %s?)",
				m.seen+uint64(i), m.prog, m.kind, ev.Branch, ds[i], want,
				paramScaleHint(m.params), m.set.Name())
		}
	}
	m.seen += uint64(len(events))
	return nil
}

// checkInfoKindsPolicy checks the daemon's /v1/info kind and policy
// advertisement against what this run will drive. Absent fields mean a
// pre-kind daemon: exactly ["branch"] served, under the reactive policy.
func checkInfoKindsPolicy(info server.Info, kinds []trace.Kind, policy string) error {
	served := map[string]bool{trace.KindBranch.String(): info.Kinds == nil}
	for _, name := range info.Kinds {
		served[name] = true
	}
	for _, k := range kinds {
		if !served[k.String()] {
			return fmt.Errorf("daemon does not serve kind %s (advertises %v; run it with -kinds %s)",
				k, info.Kinds, k)
		}
	}
	daemonPolicy := info.Policy
	if daemonPolicy == "" {
		daemonPolicy = core.PolicyReactive
	}
	if daemonPolicy != policy {
		return fmt.Errorf("daemon runs policy %s, the -verify mirror would run %s (start reactiveload with -policy %s, or the daemon with -policy %s)",
			daemonPolicy, policy, daemonPolicy, policy)
	}
	return nil
}

// tally folds one batch's decisions into the worker result.
func (res *workerResult) tally(n int, ds []server.Decision) {
	res.batches++
	res.events += uint64(n)
	for _, d := range ds {
		res.verdicts[d.Verdict]++
		res.decisions[d.State]++
	}
}

// runWorker replays one seeded stream against the daemon over per-batch
// POSTs.
func runWorker(ctx context.Context, client *server.Client, ins *instruments, cfg workerConfig) workerResult {
	var res workerResult
	stream, err := buildEventStream(cfg)
	if err != nil {
		res.err = err
		return res
	}
	mir, err := newMirror(cfg)
	if err != nil {
		res.err = err
		return res
	}

	batch := make([]trace.Event, 0, cfg.batch)
	frameBuf := make([][]trace.Event, 0, cfg.frames)
	// send posts the batch as cfg.frames contiguous frames and returns the
	// concatenated per-event decisions. A *server.BatchTruncatedError or a
	// per-frame rejection propagates as-is, so the operator sees the
	// "applied N of M frames" diagnostic rather than a silent drop.
	send := func() ([]server.Decision, server.IngestTiming, error) {
		if cfg.frames <= 1 {
			return client.IngestKindTimed(ctx, cfg.program, cfg.kind, batch)
		}
		frameBuf = frameBuf[:0]
		per := (len(batch) + cfg.frames - 1) / cfg.frames
		for off := 0; off < len(batch); off += per {
			end := off + per
			if end > len(batch) {
				end = len(batch)
			}
			frameBuf = append(frameBuf, batch[off:end])
		}
		results, tm, err := client.IngestFramesKindTimed(ctx, cfg.program, cfg.kind, frameBuf)
		if err != nil {
			return nil, tm, err
		}
		ds := make([]server.Decision, 0, len(batch))
		for i, r := range results {
			if r.Err != nil {
				return nil, tm, fmt.Errorf("frame %d of %d: %w", i, len(results), r.Err)
			}
			ds = append(ds, r.Decisions...)
		}
		return ds, tm, nil
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		t0 := time.Now()
		ds, tm, err := send()
		if err != nil {
			return err
		}
		ins.batch.Observe(time.Since(t0).Seconds())
		ins.encode.Observe(tm.Encode.Seconds())
		ins.network.Observe(tm.Network.Seconds())
		ins.decode.Observe(tm.Decode.Seconds())
		ins.batches.Inc()
		ins.events.Add(uint64(len(batch)))
		res.tally(len(batch), ds)
		if err := mir.check(batch, ds); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for {
		ev, ok := stream.Next()
		if !ok {
			break
		}
		batch = append(batch, ev)
		if len(batch) == cfg.batch {
			if err := flush(); err != nil {
				res.err = err
				return res
			}
		}
	}
	res.err = flush()
	return res
}

// runStreamWorker replays one seeded stream over a single streaming ingest
// session: a sender goroutine pipelines batches up to the granted window
// while the receiver (this goroutine) drains decision frames, verifies them
// against the mirror, and measures per-frame send-to-decision latency.
func runStreamWorker(ctx context.Context, client *server.Client, ins *instruments, cfg workerConfig) workerResult {
	var res workerResult
	var stream trace.Stream
	var err error
	if cfg.pre == nil {
		if stream, err = buildEventStream(cfg); err != nil {
			res.err = err
			return res
		}
	}
	mir, err := newMirror(cfg)
	if err != nil {
		res.err = err
		return res
	}

	var opts []server.StreamOption
	if cfg.window > 0 {
		opts = append(opts, server.WithStreamWindow(cfg.window))
	}
	opts = append(opts, server.WithStreamDecisions(cfg.decisions))
	if cfg.tracer != nil {
		// OpenStream inherits the client's tracer; DialStream bypasses the
		// client, so the raw-listener path needs it passed explicitly.
		opts = append(opts, server.WithStreamTracer(cfg.tracer))
	}
	var st *server.Stream
	if cfg.streamAddr != "" {
		// A raw listener has no /v1/info; resolve the hash over HTTP.
		info, ierr := client.Info(ctx)
		if ierr != nil {
			res.err = fmt.Errorf("resolving params hash for -stream-addr: %w", ierr)
			return res
		}
		hash, herr := server.ParseInfoParamsHash(info)
		if herr != nil {
			res.err = herr
			return res
		}
		st, err = server.DialStream(ctx, cfg.streamAddr, cfg.program, hash, opts...)
	} else {
		st, err = client.OpenStream(ctx, cfg.program, opts...)
	}
	if err != nil {
		res.err = err
		return res
	}
	res.window = st.Window()

	// inflight pairs each sent batch with its send timestamp; the receiver
	// matches them to decision frames, which arrive in send order. Capacity
	// beyond the window keeps the sender from ever blocking on this channel
	// rather than on window credit.
	type inflight struct {
		events []trace.Event
		sentAt time.Time
	}
	pending := make(chan inflight, st.Window()+1)
	sendErr := make(chan error, 1)
	go func() {
		defer close(pending)
		if cfg.pre != nil {
			// Pre-encoded run: the loop ships ready wire frames; no
			// generation or encoding happens inside the measurement.
			for i, frame := range cfg.pre.frames {
				evs := cfg.pre.batches[i]
				t0 := time.Now()
				if err := st.SendEncodedKind(ctx, cfg.kind, frame, len(evs)); err != nil {
					sendErr <- err
					return
				}
				pending <- inflight{events: evs, sentAt: t0}
			}
			sendErr <- nil
			return
		}
		batch := make([]trace.Event, 0, cfg.batch)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			// The batch buffer is reused; the in-flight copy belongs to
			// the receiver until its decisions arrive.
			evs := make([]trace.Event, len(batch))
			copy(evs, batch)
			t0 := time.Now()
			if err := st.SendKind(ctx, cfg.kind, evs); err != nil {
				return err
			}
			pending <- inflight{events: evs, sentAt: t0}
			batch = batch[:0]
			return nil
		}
		for {
			ev, ok := stream.Next()
			if !ok {
				break
			}
			batch = append(batch, ev)
			if len(batch) == cfg.batch {
				if err := flush(); err != nil {
					sendErr <- err
					return
				}
			}
		}
		sendErr <- flush()
	}()

	for inf := range pending {
		ds, err := st.Recv(ctx)
		if err != nil {
			res.err = fmt.Errorf("receiving decisions: %w", err)
			break
		}
		if len(ds) != len(inf.events) {
			res.err = fmt.Errorf("%d decisions for %d events", len(ds), len(inf.events))
			break
		}
		ins.batch.Observe(time.Since(inf.sentAt).Seconds())
		ins.batches.Inc()
		ins.events.Add(uint64(len(inf.events)))
		res.tally(len(inf.events), ds)
		if err := mir.check(inf.events, ds); err != nil {
			res.err = err
			break
		}
	}
	if res.err != nil {
		// The receive loop broke early. Close first: it discards the
		// undelivered decision frames, which unwedges the stream reader and
		// fails any Send blocked on window credit — only then is the sender
		// guaranteed to finish.
		go func() {
			for range pending {
			}
		}()
		st.Close()
		<-sendErr
		return res
	}
	if err := <-sendErr; err != nil {
		res.err = err
		st.Close()
		return res
	}
	res.err = st.Close()
	return res
}

// paramScaleHint recovers the scale factor for the mismatch diagnostic.
func paramScaleHint(p core.Params) uint64 {
	d := core.DefaultParams()
	if p.MonitorPeriod == 0 {
		return 1
	}
	return d.MonitorPeriod / p.MonitorPeriod
}
