// Command reactiveload is a seeded load generator for reactived: it replays
// the calibrated synthetic workloads (internal/workload), optionally
// perturbed by the fault injectors (internal/faults), against a running
// daemon at configurable concurrency and batch size, and reports throughput
// and batch-latency quantiles as JSON for regression tracking.
//
// Each worker drives its own program stream ("<bench>@<worker>"), so workers
// never contend on a program cursor and the daemon's decision sequence per
// program is deterministic. With -verify, every worker simultaneously runs
// an in-process reactive controller over the identical event sequence and
// fails if any networked decision differs — the end-to-end closed-loop
// equivalence check.
//
// Usage:
//
//	reactiveload -addr http://127.0.0.1:8344 [flags]
//
// Flags:
//
//	-addr url        daemon base URL (required)
//	-bench name      workload model to replay (default gzip)
//	-input id        workload input: eval or profile (default eval)
//	-scale f         event-count scale relative to the calibrated default (default 0.05)
//	-events n        hard cap on events per worker (0 = the scaled spec length)
//	-concurrency n   parallel workers (default 4)
//	-batch n         events per ingest batch (default 1024)
//	-frames n        trace frames per batch; events split contiguously (default 1)
//	-seed n          workload seed base; worker w uses seed+w (default 0)
//	-intensity f     fault-injection intensity in [0,1] (default 0)
//	-param-scale k   controller parameter scale for -verify; must match the daemon (default 10)
//	-verify          cross-check every decision against an in-process controller
//	-dump-metrics    write the load generator's own metrics registry (Prometheus text) to stderr
//
// All latency accounting flows through one internal/obs registry: the JSON
// report's batch quantiles and its per-phase encode / network / decode
// breakdown are read back from the registry's histograms, and -dump-metrics
// exposes the registry itself.
//
// Exit status: 0 on success, 1 on transport errors or verification failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"reactivespec/internal/core"
	"reactivespec/internal/faults"
	"reactivespec/internal/obs"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// Report is the JSON result written to stdout.
type Report struct {
	Benchmark   string  `json:"benchmark"`
	Input       string  `json:"input"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"batch"`
	Frames      int     `json:"frames_per_batch"`
	Intensity   float64 `json:"intensity"`
	Verified    bool    `json:"verified"`

	Events     uint64  `json:"events"`
	Batches    uint64  `json:"batches"`
	ElapsedSec float64 `json:"elapsed_sec"`
	EventsPerS float64 `json:"events_per_sec"`

	BatchP50Ms float64 `json:"batch_latency_p50_ms"`
	BatchP90Ms float64 `json:"batch_latency_p90_ms"`
	BatchP99Ms float64 `json:"batch_latency_p99_ms"`

	// Phases breaks batch latency into client-side phases ("encode",
	// "network", "decode"), sourced from the obs registry histograms.
	Phases map[string]PhaseLatency `json:"phase_latency_ms"`

	Verdicts  map[string]uint64 `json:"verdicts"`
	Decisions map[string]uint64 `json:"decisions"`
}

// PhaseLatency is one phase's latency quantiles in milliseconds.
type PhaseLatency struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// instruments is the load generator's metrics registry: the batch-latency
// summary plus one histogram per ingest phase, shared by all workers.
type instruments struct {
	reg     *obs.Registry
	events  *obs.Counter
	batches *obs.Counter
	batch   *obs.Histogram
	encode  *obs.Histogram
	network *obs.Histogram
	decode  *obs.Histogram
}

func newInstruments() *instruments {
	reg := obs.NewRegistry()
	lat := func(name, help string) *obs.Histogram {
		return reg.NewHistogram(name, help, 1e-6, 60, 30, 0.5, 0.9, 0.99)
	}
	return &instruments{
		reg:     reg,
		events:  reg.NewCounter("reactiveload_events_total", "Events sent to the daemon."),
		batches: reg.NewCounter("reactiveload_batches_total", "Ingest batches sent."),
		batch:   lat("reactiveload_batch_seconds", "Ingest batch round-trip latency."),
		encode:  lat("reactiveload_encode_seconds", "Client time encoding trace frames."),
		network: lat("reactiveload_network_seconds", "HTTP round trip, including reading the response body."),
		decode:  lat("reactiveload_decode_seconds", "Client time decoding decision bytes."),
	}
}

// phase reads one histogram back as millisecond quantiles.
func phase(h *obs.Histogram) PhaseLatency {
	return PhaseLatency{
		P50Ms: h.Quantile(0.5) * 1e3,
		P90Ms: h.Quantile(0.9) * 1e3,
		P99Ms: h.Quantile(0.99) * 1e3,
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reactiveload:", err)
		os.Exit(1)
	}
}

// workerResult is one worker's contribution to the report.
type workerResult struct {
	events    uint64
	batches   uint64
	verdicts  [3]uint64 // indexed by core.Verdict
	decisions [4]uint64 // indexed by core.State
	err       error
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reactiveload", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", "", "daemon base URL (required), e.g. http://127.0.0.1:8344")
	bench := fs.String("bench", "gzip", "workload model to replay")
	input := fs.String("input", "eval", `workload input: "eval" or "profile"`)
	scale := fs.Float64("scale", 0.05, "event-count scale relative to the calibrated default")
	events := fs.Uint64("events", 0, "hard cap on events per worker (0 = the scaled spec length)")
	concurrency := fs.Int("concurrency", 4, "parallel workers")
	batch := fs.Int("batch", 1024, "events per ingest batch")
	frames := fs.Int("frames", 1, "trace frames per batch; events split contiguously")
	seed := fs.Uint64("seed", 0, "workload seed base; worker w uses seed+w")
	intensity := fs.Float64("intensity", 0, "fault-injection intensity in [0,1]")
	paramScale := fs.Uint64("param-scale", 10, "controller parameter scale for -verify (must match the daemon)")
	verify := fs.Bool("verify", false, "cross-check every decision against an in-process controller")
	dumpMetrics := fs.Bool("dump-metrics", false,
		"write the load generator's own metrics registry (Prometheus text) to stderr after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *concurrency < 1 || *batch < 1 || *frames < 1 {
		return fmt.Errorf("-concurrency, -batch and -frames must be at least 1")
	}
	if *intensity < 0 || *intensity > 1 {
		return fmt.Errorf("-intensity %v outside [0, 1]", *intensity)
	}
	var inputID workload.InputID
	switch *input {
	case "eval":
		inputID = workload.InputEval
	case "profile":
		inputID = workload.InputProfile
	default:
		return fmt.Errorf("unknown -input %q (want eval or profile)", *input)
	}
	if _, err := workload.Build(*bench, inputID, workload.Options{}); err != nil {
		return err
	}
	params := core.DefaultParams().Scaled(*paramScale)
	client := server.NewClient(*addr, nil)
	if _, err := client.Healthz(); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", *addr, err)
	}

	ins := newInstruments()
	results := make([]workerResult, *concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runWorker(client, ins, workerConfig{
				program:   fmt.Sprintf("%s@%d", *bench, w),
				bench:     *bench,
				input:     inputID,
				scale:     *scale,
				events:    *events,
				batch:     *batch,
				frames:    *frames,
				seed:      *seed + uint64(w),
				intensity: *intensity,
				params:    params,
				verify:    *verify,
			})
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Benchmark:   *bench,
		Input:       inputID.String(),
		Concurrency: *concurrency,
		Batch:       *batch,
		Frames:      *frames,
		Intensity:   *intensity,
		Verified:    *verify,
		ElapsedSec:  elapsed.Seconds(),
		Verdicts:    map[string]uint64{},
		Decisions:   map[string]uint64{},
	}
	for w, r := range results {
		if r.err != nil {
			return fmt.Errorf("worker %d: %w", w, r.err)
		}
		rep.Events += r.events
		rep.Batches += r.batches
		for v, n := range r.verdicts {
			rep.Verdicts[core.Verdict(v).String()] += n
		}
		for st, n := range r.decisions {
			rep.Decisions[core.State(st).String()] += n
		}
	}
	if elapsed > 0 {
		rep.EventsPerS = float64(rep.Events) / elapsed.Seconds()
	}
	rep.BatchP50Ms = ins.batch.Quantile(0.5) * 1e3
	rep.BatchP90Ms = ins.batch.Quantile(0.9) * 1e3
	rep.BatchP99Ms = ins.batch.Quantile(0.99) * 1e3
	rep.Phases = map[string]PhaseLatency{
		"encode":  phase(ins.encode),
		"network": phase(ins.network),
		"decode":  phase(ins.decode),
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *dumpMetrics {
		return ins.reg.WritePrometheus(os.Stderr)
	}
	return nil
}

type workerConfig struct {
	program   string
	bench     string
	input     workload.InputID
	scale     float64
	events    uint64
	batch     int
	frames    int
	seed      uint64
	intensity float64
	params    core.Params
	verify    bool
}

// runWorker replays one seeded stream against the daemon.
func runWorker(client *server.Client, ins *instruments, cfg workerConfig) workerResult {
	var res workerResult
	spec, err := workload.Build(cfg.bench, cfg.input, workload.Options{
		EventScale: workload.DefaultEventScale * cfg.scale,
		Seed:       cfg.seed,
	})
	if err != nil {
		res.err = err
		return res
	}
	var stream trace.Stream = workload.NewGenerator(spec)
	if cfg.intensity > 0 {
		mix := faults.IntensityMix(cfg.intensity, spec.Events,
			trace.BranchID(len(spec.Branches)), spec.Seed^0x10adc1e4)
		stream = mix.Apply(stream, spec.Events)
	}
	if cfg.events > 0 {
		stream = trace.Head(stream, cfg.events)
	}

	// The verification mirror: an in-process controller fed the identical
	// sequence must agree with every networked decision.
	var mirror *core.Controller
	var mirrorInstr uint64
	if cfg.verify {
		mirror = core.New(cfg.params)
	}

	batch := make([]trace.Event, 0, cfg.batch)
	frameBuf := make([][]trace.Event, 0, cfg.frames)
	// send posts the batch as cfg.frames contiguous frames and returns the
	// concatenated per-event decisions. A *server.BatchTruncatedError or a
	// per-frame rejection propagates as-is, so the operator sees the
	// "applied N of M frames" diagnostic rather than a silent drop.
	send := func() ([]server.Decision, server.IngestTiming, error) {
		if cfg.frames <= 1 {
			return client.IngestTimed(cfg.program, batch)
		}
		frameBuf = frameBuf[:0]
		per := (len(batch) + cfg.frames - 1) / cfg.frames
		for off := 0; off < len(batch); off += per {
			end := off + per
			if end > len(batch) {
				end = len(batch)
			}
			frameBuf = append(frameBuf, batch[off:end])
		}
		results, tm, err := client.IngestFramesTimed(cfg.program, frameBuf)
		if err != nil {
			return nil, tm, err
		}
		ds := make([]server.Decision, 0, len(batch))
		for i, r := range results {
			if r.Err != nil {
				return nil, tm, fmt.Errorf("frame %d of %d: %w", i, len(results), r.Err)
			}
			ds = append(ds, r.Decisions...)
		}
		return ds, tm, nil
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		t0 := time.Now()
		ds, tm, err := send()
		if err != nil {
			return err
		}
		ins.batch.Observe(time.Since(t0).Seconds())
		ins.encode.Observe(tm.Encode.Seconds())
		ins.network.Observe(tm.Network.Seconds())
		ins.decode.Observe(tm.Decode.Seconds())
		ins.batches.Inc()
		ins.events.Add(uint64(len(batch)))
		res.batches++
		res.events += uint64(len(batch))
		for i, d := range ds {
			res.verdicts[d.Verdict]++
			res.decisions[d.State]++
			if mirror != nil {
				ev := batch[i]
				mirrorInstr += uint64(ev.Gap)
				v := mirror.OnBranch(ev.Branch, ev.Taken, mirrorInstr)
				dir, live := mirror.Speculating(ev.Branch)
				want := server.Decision{Verdict: v, State: mirror.BranchState(ev.Branch), Dir: dir, Live: live}
				if d != want {
					return fmt.Errorf("decision mismatch at event %d of %s (branch %d): daemon %v, in-process %v"+
						" (is the daemon running with -param-scale %d?)",
						res.events-uint64(len(batch))+uint64(i), cfg.program, ev.Branch, d, want,
						paramScaleHint(cfg.params))
				}
			}
		}
		batch = batch[:0]
		return nil
	}
	for {
		ev, ok := stream.Next()
		if !ok {
			break
		}
		batch = append(batch, ev)
		if len(batch) == cfg.batch {
			if err := flush(); err != nil {
				res.err = err
				return res
			}
		}
	}
	res.err = flush()
	return res
}

// paramScaleHint recovers the scale factor for the mismatch diagnostic.
func paramScaleHint(p core.Params) uint64 {
	d := core.DefaultParams()
	if p.MonitorPeriod == 0 {
		return 1
	}
	return d.MonitorPeriod / p.MonitorPeriod
}
