package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"reactivespec/internal/core"
	"reactivespec/internal/replica"
	"reactivespec/internal/server"
	"reactivespec/internal/wal"
)

// failoverPair is an in-process primary/replica pair wired exactly as two
// reactived daemons would be: WAL-backed servers, a shipper on the primary's
// log, a follower feeding the replica through ApplyReplicated.
type failoverPair struct {
	primaryURL string
	replicaURL string
	kill       func() // crash the primary: HTTP front end, shipper, listener
}

func startFailoverPair(t *testing.T) *failoverPair {
	t.Helper()
	params := core.DefaultParams().Scaled(10) // reactiveload's default -param-scale
	hash := server.ParamsHash(params)

	pl, err := wal.Open(wal.Options{Dir: t.TempDir(), ParamsHash: hash, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ps := server.New(server.Config{Params: params, Shards: 4, WAL: pl})
	pts := httptest.NewServer(ps.Handler())
	sh := replica.NewShipper(replica.ShipperConfig{Log: pl, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sh.Serve(ln)

	rl, err := wal.Open(wal.Options{Dir: t.TempDir(), ParamsHash: hash, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rs := server.New(server.Config{Params: params, Shards: 4, WAL: rl, Replica: true, Logf: t.Logf})
	rts := httptest.NewServer(rs.Handler())
	f := replica.StartFollower(replica.FollowerConfig{
		Addr:       ln.Addr().String(),
		ParamsHash: hash,
		NextSeq:    rl.NextSeq,
		Apply:      rs.ApplyReplicated,
		Logf:       t.Logf,
	})
	rs.SetSealFunc(f.Seal)

	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			pts.CloseClientConnections()
			pts.Close()
			sh.Close()
			ln.Close()
		})
	}
	t.Cleanup(func() {
		rts.Close()
		f.Seal()
		rl.Close()
		kill()
		pl.Close()
	})
	return &failoverPair{primaryURL: pts.URL, replicaURL: rts.URL, kill: kill}
}

// TestRunFailover drives -failover end to end in-process, on the external-
// crash path (-failover-pid 0): the primary dies without drain after a few
// acked batches, the run promotes the replica, resumes each worker from the
// replica's cursor, and every decision — pre-crash, re-sent overlap, and
// post-failover tail — verifies against the absolute-index mirror.
func TestRunFailover(t *testing.T) {
	p := startFailoverPair(t)

	// The external killer: crash the primary once worker 0 has a few batches
	// acked, so the loss lands mid-run.
	go func() {
		cl := server.Connect(p.primaryURL)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			cur, err := cl.Cursor(context.Background(), "gzip@0")
			if err == nil && cur.Events >= 3*256 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		p.kill()
	}()

	var out bytes.Buffer
	err := run([]string{
		"-addr", p.primaryURL,
		"-failover", p.replicaURL,
		"-bench", "gzip",
		"-events", "6000",
		"-concurrency", "2",
		"-batch", "256",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if rep.Mode != "failover" || !rep.Verified {
		t.Fatalf("mode %q verified %v, want failover/verified: %+v", rep.Mode, rep.Verified, rep)
	}
	if rep.Failover == nil || !rep.Failover.Promoted {
		t.Fatalf("no promotion in report: %+v", rep.Failover)
	}
	if rep.Failover.WorkersResumed == 0 {
		t.Fatalf("no worker resumed on the replica: %+v", rep.Failover)
	}
	// Every unique event index got exactly one verified decision: the tally
	// covers the full stream despite the crash and the re-sent overlap.
	if want := uint64(2 * 6000); rep.Events != want {
		t.Fatalf("events = %d, want %d", rep.Events, want)
	}
	var verdictTotal uint64
	for _, n := range rep.Verdicts {
		verdictTotal += n
	}
	if verdictTotal != rep.Events {
		t.Fatalf("verdict counts sum to %d, want %d", verdictTotal, rep.Events)
	}
}

// TestRunFailoverRejectsPrimaryTarget pins the up-front target check: a
// -failover URL pointing at a daemon that is not a replica fails before any
// event is sent.
func TestRunFailoverRejectsPrimaryTarget(t *testing.T) {
	base := testDaemon(t)
	err := run([]string{"-addr", base, "-failover", base}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Fatalf("err = %v, want not-a-replica rejection", err)
	}
}

func TestRunFailoverFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-addr", "http://x", "-failover-pid", "1"},                               // pid without -failover
		{"-addr", "http://x", "-failover-after-batches", "4"},                     // threshold without -failover
		{"-addr", "http://x", "-failover", "http://y", "-stream"},                 // stream conflict
		{"-addr", "http://x", "-failover", "http://y", "-frames", "2"},            // frames conflict
		{"-addr", "http://x", "-failover", "http://y", "-failover-pid", "12345"},  // pid without threshold
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
