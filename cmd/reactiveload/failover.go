// Failover verify mode: drive the primary, lose it mid-run (SIGKILL by pid
// or an external crash), promote the follower, and resume the stream against
// it from the replica's own cursor — verifying every decision, before and
// after the crash, against an in-process mirror at absolute stream indices.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"reactivespec/internal/core"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
)

// FailoverReport is the report's failover block: what happened to the
// primary, and how the run resumed.
type FailoverReport struct {
	Promoted        bool   `json:"promoted"`
	KilledAtBatches uint64 `json:"killed_at_batches,omitempty"` // 0 when the primary died externally
	PromotedWalSeq  uint64 `json:"promoted_wal_seq"`
	WorkersResumed  int    `json:"workers_resumed"`
	ResentEvents    uint64 `json:"resent_events"`
}

// failoverCtl coordinates the crash and the promotion across workers: it
// counts acked batches to decide when to SIGKILL the primary, and funnels
// every worker that loses the primary through exactly one promotion of the
// follower.
type failoverCtl struct {
	follower *server.Client
	pid      int
	after    uint64

	batches  atomic.Uint64
	killedAt atomic.Uint64
	killOnce sync.Once

	// debugURL is the primary's -debug-addr base URL; when set, killOnce
	// snapshots its "reactived" expvar block (replication state, follower
	// lag) immediately before the SIGKILL. Both fields are written inside
	// killOnce by a worker goroutine and read only after wg.Wait.
	debugURL  string
	debugVars json.RawMessage
	debugErr  error

	promoteOnce sync.Once
	promoteErr  error
	res         server.PromoteResult

	resumed atomic.Uint64 // workers that failed over to the follower
	resent  atomic.Uint64 // events re-sent to the follower after promotion
}

func newFailoverCtl(follower *server.Client, pid int, after uint64) *failoverCtl {
	return &failoverCtl{follower: follower, pid: pid, after: after}
}

// noteBatch records one primary-acked batch; crossing the
// -failover-after-batches threshold kills the primary, once, with no drain.
func (fc *failoverCtl) noteBatch() {
	n := fc.batches.Add(1)
	if fc.pid > 0 && fc.after > 0 && n >= fc.after {
		fc.killOnce.Do(func() {
			fc.killedAt.Store(n)
			if fc.debugURL != "" {
				// Capture the primary's replication expvars (follower lag
				// included) in its last instant alive, then kill it.
				fc.debugVars, fc.debugErr = fetchReplicationVars(fc.debugURL)
			}
			syscall.Kill(fc.pid, syscall.SIGKILL)
		})
	}
}

// fetchReplicationVars reads base's /debug/vars and returns the "reactived"
// block — the daemon's replication/WAL expvar snapshot. The short timeout
// keeps a wedged debug listener from postponing the kill indefinitely.
func fetchReplicationVars(base string) (json.RawMessage, error) {
	hc := &http.Client{Timeout: 2 * time.Second}
	resp, err := hc.Get(strings.TrimRight(base, "/") + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/vars: %s", resp.Status)
	}
	var all map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		return nil, fmt.Errorf("decoding /debug/vars: %w", err)
	}
	block, ok := all["reactived"]
	if !ok {
		return nil, fmt.Errorf(`/debug/vars has no "reactived" block`)
	}
	return block, nil
}

// await promotes the follower exactly once, retrying transient failures;
// concurrent callers block until the one promotion resolves.
func (fc *failoverCtl) await(ctx context.Context) error {
	fc.promoteOnce.Do(func() {
		deadline := time.Now().Add(30 * time.Second)
		for {
			res, err := fc.follower.Promote(ctx)
			switch {
			case err == nil:
				fc.res = res
				return
			case errors.Is(err, server.ErrNotReplica):
				// Someone beat us to it (an operator's SIGUSR1, another
				// worker process); the follower is writable either way.
				fc.res = server.PromoteResult{Mode: "primary"}
				return
			case time.Now().After(deadline):
				fc.promoteErr = fmt.Errorf("promoting follower: %w", err)
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
	})
	return fc.promoteErr
}

// runFailoverWorker is runWorker for -failover. The event stream and its
// mirror decisions are materialized up front, so after the crash the worker
// can resume mid-stream — from whatever event count the promoted replica's
// cursor reports — and still verify each decision against its absolute index.
func runFailoverWorker(ctx context.Context, client *server.Client, ins *instruments, cfg workerConfig, fc *failoverCtl) workerResult {
	var res workerResult
	stream, err := buildEventStream(cfg)
	if err != nil {
		res.err = err
		return res
	}
	var events []trace.Event
	for {
		ev, ok := stream.Next()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	want := make([]server.Decision, len(events))
	set, err := core.NewPolicySet(cfg.policy, cfg.params)
	if err != nil {
		res.err = err
		return res
	}
	var instr uint64
	for i, ev := range events {
		instr += uint64(ev.Gap)
		v, st, dir, live := set.OnEvent(ev.Branch, ev.Taken, instr)
		want[i] = server.Decision{Verdict: v, State: st, Dir: dir, Live: live}
	}

	sendBatch := func(cl *server.Client, off int) ([]server.Decision, error) {
		end := off + cfg.batch
		if end > len(events) {
			end = len(events)
		}
		t0 := time.Now()
		ds, tm, err := cl.IngestTimed(ctx, cfg.program, events[off:end])
		if err != nil {
			return nil, err
		}
		ins.batch.Observe(time.Since(t0).Seconds())
		ins.encode.Observe(tm.Encode.Seconds())
		ins.network.Observe(tm.Network.Seconds())
		ins.decode.Observe(tm.Decode.Seconds())
		ins.batches.Inc()
		ins.events.Add(uint64(len(ds)))
		return ds, nil
	}
	// tallied is the high-water mark of counted events: after failover the
	// worker re-sends from the replica's cursor, which can sit below what the
	// primary already acked, and the overlap must not double-count.
	tallied := 0
	record := func(off int, ds []server.Decision) {
		res.batches++
		for i, d := range ds {
			if off+i < tallied {
				continue
			}
			res.events++
			res.verdicts[d.Verdict]++
			res.decisions[d.State]++
		}
		if off+len(ds) > tallied {
			tallied = off + len(ds)
		}
	}
	check := func(off int, ds []server.Decision) error {
		for i, d := range ds {
			if d != want[off+i] {
				return fmt.Errorf("decision mismatch at event %d of %s: daemon %v, in-process %v"+
					" (is the daemon running with -param-scale %d?)",
					off+i, cfg.program, d, want[off+i], paramScaleHint(cfg.params))
			}
		}
		return nil
	}

	// Phase 1: drive the primary until the stream ends or the primary dies.
	// A transport error means the crash arrived; a mirror mismatch is a real
	// verification failure and fails the worker outright.
	off := 0
	var lostPrimary error
	for off < len(events) {
		ds, err := sendBatch(client, off)
		if err != nil {
			lostPrimary = err
			break
		}
		record(off, ds)
		if err := check(off, ds); err != nil {
			res.err = err
			return res
		}
		fc.noteBatch()
		off += len(ds)
	}
	if lostPrimary == nil {
		return res // the whole stream was acked before the crash
	}

	// Phase 2: promote (once, across workers), ask the replica how far it
	// got, and resume from there. Events between the replica's cursor and the
	// primary's last ack are re-sent; determinism makes their decisions
	// bitwise-identical, and check pins that.
	if err := fc.await(ctx); err != nil {
		res.err = fmt.Errorf("%w (primary lost: %v)", err, lostPrimary)
		return res
	}
	cur, err := fc.follower.Cursor(ctx, cfg.program)
	if err != nil {
		res.err = fmt.Errorf("reading replica cursor: %w (primary lost: %v)", err, lostPrimary)
		return res
	}
	resume := int(cur.Events)
	if resume > len(events) {
		res.err = fmt.Errorf("replica cursor %d is beyond the %d-event stream", resume, len(events))
		return res
	}
	fc.resumed.Add(1)
	fc.resent.Add(uint64(len(events) - resume))
	for off = resume; off < len(events); {
		ds, err := sendBatch(fc.follower, off)
		if err != nil {
			res.err = fmt.Errorf("ingest on promoted replica at event %d: %w", off, err)
			return res
		}
		record(off, ds)
		if err := check(off, ds); err != nil {
			res.err = err
			return res
		}
		off += len(ds)
	}
	return res
}
