// Command tracegen generates, inspects, and replays the synthetic branch
// traces used by the reproduction, so workloads can be exported to (or
// imported from) other tools.
//
// Usage:
//
//	tracegen -bench gcc [-input eval|profile] [-scale f] [-seed n] -o gcc.trace
//	tracegen -stats gcc.trace
//
// The trace format is the compact varint encoding of internal/trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"reactivespec/internal/bias"
	"reactivespec/internal/stats"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark to generate (one of the 12)")
	input := fs.String("input", "eval", `input: "eval", "profile", or "profile-N"`)
	scale := fs.Float64("scale", 1.0, "workload scale relative to the calibrated default")
	seed := fs.Uint64("seed", 0, "workload seed")
	outPath := fs.String("o", "", "output trace file (generation mode)")
	statsPath := fs.String("stats", "", "trace file to summarize (inspection mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *statsPath != "":
		return writeStats(out, *statsPath)
	case *bench != "" && *outPath != "":
		return generate(out, *bench, *input, *scale, *seed, *outPath)
	default:
		fs.Usage()
		return fmt.Errorf("need either -bench and -o (generate) or -stats (inspect)")
	}
}

func parseInput(s string) (workload.InputID, error) {
	switch s {
	case "eval":
		return workload.InputEval, nil
	case "profile":
		return workload.InputProfile, nil
	}
	var k int
	if _, err := fmt.Sscanf(s, "profile-%d", &k); err == nil && k >= 1 {
		return workload.InputVariant(k), nil
	}
	return 0, fmt.Errorf("unknown input %q", s)
}

func generate(out io.Writer, bench, input string, scale float64, seed uint64, outPath string) error {
	in, err := parseInput(input)
	if err != nil {
		return err
	}
	spec, err := workload.Build(bench, in, workload.Options{
		EventScale: workload.DefaultEventScale * scale,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := trace.Capture(f, workload.NewGenerator(spec), spec.Events)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s (%s input): %s events, %s bytes (%.2f B/event) -> %s\n",
		bench, in, stats.Count(n), stats.Count(uint64(info.Size())),
		float64(info.Size())/float64(n), outPath)
	return nil
}

func writeStats(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	prof := bias.FromStream(r)
	if r.Err() != nil {
		return r.Err()
	}
	t := stats.NewTable("metric", "value")
	t.AddRowf("%s", "events", "%s", stats.Count(prof.Events()))
	t.AddRowf("%s", "instructions", "%s", stats.Count(prof.Instrs()))
	t.AddRowf("%s", "static branches", "%d", prof.Touched())
	knee := prof.AtThreshold(0.99)
	t.AddRowf("%s", "branches with bias >= 99%", "%d", knee.NumStatic)
	t.AddRowf("%s", "self-training correct @99%", "%s", stats.Pct(knee.CorrectF, 2))
	t.AddRowf("%s", "self-training incorrect @99%", "%s", stats.Pct(knee.WrongF, 4))
	return t.WriteText(out)
}
