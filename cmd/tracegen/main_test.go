package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eon.trace")
	var b strings.Builder
	if err := run([]string{"-bench", "eon", "-scale", "0.02", "-o", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eon") {
		t.Fatalf("generation output: %s", b.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	b.Reset()
	if err := run([]string{"-stats", path}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events", "static branches", "self-training"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("stats output missing %q:\n%s", want, b.String())
		}
	}
}

func TestProfileVariantInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.trace")
	var b strings.Builder
	if err := run([]string{"-bench", "gzip", "-input", "profile-3", "-scale", "0.02", "-o", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "profile-variant-3") {
		t.Fatalf("output: %s", b.String())
	}
}

func TestCorruptTraceDiagnostics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gzip.trace")
	var b strings.Builder
	if err := run([]string{"-bench", "gzip", "-scale", "0.02", "-o", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A truncated file must yield a descriptive error naming the offset,
	// not garbage statistics.
	trunc := filepath.Join(dir, "trunc.trace")
	if err := os.WriteFile(trunc, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	err = run([]string{"-stats", trunc}, &b)
	if err == nil {
		t.Fatal("truncated trace inspected without error")
	}
	if !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("truncation error lacks diagnostics: %v", err)
	}

	// Bad magic is rejected up front.
	bad := filepath.Join(dir, "bad.trace")
	mangled := append([]byte{}, data...)
	mangled[0] ^= 0xff
	if err := os.WriteFile(bad, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	err = run([]string{"-stats", bad}, &b)
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad-magic error lacks diagnostics: %v", err)
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Fatal("no-mode invocation accepted")
	}
	if err := run([]string{"-bench", "nope", "-o", "/tmp/x.trace"}, &b); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run([]string{"-bench", "eon", "-input", "bogus", "-o", "/tmp/x.trace"}, &b); err == nil {
		t.Fatal("unknown input accepted")
	}
	if err := run([]string{"-stats", "/nonexistent/trace"}, &b); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
