package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "eon.trace")
	var b strings.Builder
	if err := run([]string{"-bench", "eon", "-scale", "0.02", "-o", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eon") {
		t.Fatalf("generation output: %s", b.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	b.Reset()
	if err := run([]string{"-stats", path}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events", "static branches", "self-training"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("stats output missing %q:\n%s", want, b.String())
		}
	}
}

func TestProfileVariantInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.trace")
	var b strings.Builder
	if err := run([]string{"-bench", "gzip", "-input", "profile-3", "-scale", "0.02", "-o", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "profile-variant-3") {
		t.Fatalf("output: %s", b.String())
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Fatal("no-mode invocation accepted")
	}
	if err := run([]string{"-bench", "nope", "-o", "/tmp/x.trace"}, &b); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run([]string{"-bench", "eon", "-input", "bogus", "-o", "/tmp/x.trace"}, &b); err == nil {
		t.Fatal("unknown input accepted")
	}
	if err := run([]string{"-stats", "/nonexistent/trace"}, &b); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
