// Command reactivespec regenerates the tables and figures of "Reactive
// Techniques for Controlling Software Speculation" (Zilles & Neelakantam,
// CGO 2005) from the synthetic workloads in this repository.
//
// Usage:
//
//	reactivespec [flags] <experiment>
//
// Paper artifacts: table1, table2, fig2, fig3, fig4, fig5, table3, table4,
// fig6, fig7, fig8, fig9, table5. Ablations and extensions: averaging,
// flush, generality, policies (the reactive / selftrain / probweight
// decision-policy head-to-head), replay, describe, timeline, chaos,
// sweep-monitor, sweep-evict, sweep-wait, sweep-oscillation, sweep-step,
// sweep-threshold, sweep-task, sweep-slaves.
// "all" runs everything (≈10–15 minutes at full scale).
//
// The timeline experiment runs one benchmark (default gcc; narrow with
// -bench) with the controller lifecycle trace sink attached and emits the
// per-branch state-transition timeline — as a summary table, as raw
// per-segment CSV spans, or as an SVG Gantt chart with -format svg.
//
// With -wal-dir, the timeline experiment replays a window of a reactived
// write-ahead log instead of a synthetic workload: pick the sequence window
// with -wal-from/-wal-to, the program with -wal-program (auto-detected for
// single-program logs), and match the daemon's -param-scale. The window
// replays through fresh controllers (a cold start: state and instruction
// counts are relative to the window, not the live table) and renders through
// the same table/CSV/SVG machinery.
//
// The directory does not need to be quiescent: the replay snapshots the
// segment list once at open, so it can point at a live daemon's (typically a
// replica's) -wal-dir. Records appended after the pass starts are excluded, a
// record mid-write at the tail reads as a reported clean truncation, and only
// a compaction racing the pass (a snapshot on the daemon deleting an unread
// segment) fails it — with an error saying to retry or raise -wal-from.
//
// The spans subcommand analyzes end-to-end batch span files written by
// reactived -trace-spans (and reactiveload -trace-spans):
//
//	reactivespec spans [flags] FILE...
//
// Several nodes' files (client, primary, replica) merge into one cross-node
// report keyed by trace ID: per-stage p50/p99/mean latency, each stage's
// share of traced batch wall time, how much of the batch window the named
// stages explain, and how many traces were observed end to end
// (ingest→wal→ship→follower). -format csv/svg render the same report as CSV
// or a bar chart; -require-chain makes the command fail unless at least one
// complete cross-node chain is present (the failover smoke's assertion).
//
// Flags:
//
//	-scale f        workload scale relative to the calibrated default (1.0)
//	-bench csv      comma-separated benchmark subset (default: all 12)
//	-seed n         workload seed (default 0, the calibrated seed)
//	-format f       "table" (default), "csv", or "svg" (figures 2/3/5/6/7/8, chaos, timeline)
//	-timeout d      cancel the run after this duration (e.g. 2m; 0 = none)
//	-intensities l  fault intensities for the chaos experiment (e.g. 0,0.2,0.8)
//	-wal-dir d      timeline only: replay a reactived write-ahead log under d
//	-wal-program p  program to replay from the WAL (default: auto-detect)
//	-wal-from n     first WAL sequence number to replay (default 0, the oldest)
//	-wal-to n       stop before this WAL sequence number (default 0, the end)
//	-param-scale k  the daemon's -param-scale, for WAL replay (default 10)
//	-require-chain  spans only: exit nonzero without a complete cross-node chain
//
// Exit status: 0 on success, 1 when an experiment fails (or the -timeout
// deadline cancels it), 2 on usage errors. Errors go to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"reactivespec/internal/core"
	"reactivespec/internal/experiments"
	"reactivespec/internal/obs"
	"reactivespec/internal/server"
	"reactivespec/internal/workload"
)

// usageError marks errors caused by how the command was invoked (bad flags,
// unknown experiments) as opposed to experiment failures; main translates
// the distinction into exit codes 2 and 1.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitCode maps an error to the process exit status.
func exitCode(err error) int {
	var u usageError
	if errors.As(err, &u) {
		return 2
	}
	return 1
}

// errorMessage renders err for stderr. A -timeout expiry surfaces as
// context.DeadlineExceeded ("context deadline exceeded"), which on its own
// reads like an internal failure; name the cause so it is distinguishable
// from an experiment crash.
func errorMessage(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Sprintf("run cancelled: the -timeout deadline expired (%v)", err)
	}
	return err.Error()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reactivespec:", errorMessage(err))
		os.Exit(exitCode(err))
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reactivespec", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	scale := fs.Float64("scale", 1.0, "workload scale relative to the calibrated default")
	bench := fs.String("bench", "", "comma-separated benchmark subset (default: all 12)")
	seed := fs.Uint64("seed", 0, "workload seed")
	format := fs.String("format", "table", `output format: "table", "csv", or "svg" (figures only)`)
	timeout := fs.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
	intensitiesFlag := fs.String("intensities", "", "comma-separated fault intensities in [0,1] for chaos (default 0,0.05,0.1,0.2,0.4,0.8)")
	walDir := fs.String("wal-dir", "", "timeline only: replay a reactived write-ahead log under this directory")
	walProgram := fs.String("wal-program", "", "program to replay from the WAL (default: auto-detect)")
	walFrom := fs.Uint64("wal-from", 0, "first WAL sequence number to replay (0 = oldest retained)")
	walTo := fs.Uint64("wal-to", 0, "stop the WAL replay before this sequence number (0 = end of log)")
	paramScale := fs.Uint64("param-scale", 10, "the daemon's -param-scale, for WAL replay")
	requireChain := fs.Bool("require-chain", false,
		"spans only: exit nonzero unless at least one complete ingest→wal→ship→follower chain is present")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: reactivespec [flags] <experiment>\n"+
			"       reactivespec [flags] spans FILE...\n\nexperiments: %s\n\nflags:\n",
			strings.Join(experimentNames(), " "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	csv := false
	svg := false
	switch *format {
	case "table":
	case "csv":
		csv = true
	case "svg":
		svg = true
	default:
		return usagef("unknown format %q", *format)
	}
	// `spans` is the one multi-argument subcommand: it analyzes span JSONL
	// files written by reactived/reactiveload -trace-spans rather than
	// running an experiment, and several nodes' files are typically
	// concatenated into one report.
	if fs.Arg(0) == "spans" {
		if fs.NArg() < 2 {
			return usagef("spans: expected at least one span JSONL file (reactived -trace-spans)")
		}
		return runSpans(fs.Args()[1:], csv, svg, *requireChain, out)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return usagef("expected exactly one experiment, got %d args", fs.NArg())
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Context = ctx
	}
	if *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if b == "" {
				continue
			}
			if _, err := workload.Build(b, workload.InputEval, workload.Options{}); err != nil {
				return usageError{err}
			}
			cfg.Benchmarks = append(cfg.Benchmarks, b)
		}
	}
	intensities, err := parseIntensities(*intensitiesFlag)
	if err != nil {
		return err
	}

	name := fs.Arg(0)
	if *walDir == "" && (*walProgram != "" || *walFrom != 0 || *walTo != 0) {
		return usagef("-wal-program, -wal-from and -wal-to require -wal-dir")
	}
	if *walDir != "" {
		if name != "timeline" {
			return usagef("-wal-dir applies only to the timeline experiment, not %q", name)
		}
		if *walTo != 0 && *walTo <= *walFrom {
			return usagef("empty WAL window [%d, %d)", *walFrom, *walTo)
		}
		params := core.DefaultParams().Scaled(*paramScale)
		res, trunc, err := experiments.TimelineFromWAL(experiments.WALWindow{
			Dir:        *walDir,
			Program:    *walProgram,
			From:       *walFrom,
			To:         *walTo,
			Params:     params,
			ParamsHash: server.ParamsHash(params),
		})
		if err != nil {
			return err
		}
		if trunc != nil {
			fmt.Fprintf(os.Stderr, "reactivespec: wal tail %v\n", trunc)
		}
		if svg {
			return experiments.SVGTimeline(out, res)
		}
		return experiments.WriteTimeline(out, res, csv)
	}
	if svg {
		return dispatchSVG(name, cfg, intensities, out)
	}
	if name == "all" {
		for _, n := range experimentNames() {
			if n == "all" {
				continue
			}
			fmt.Fprintf(out, "\n=== %s ===\n", n)
			if err := dispatch(n, cfg, csv, intensities, out); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	return dispatch(name, cfg, csv, intensities, out)
}

// runSpans loads one or more span JSONL files (several nodes' files combine
// into one cross-node report), builds the critical-path latency attribution,
// and renders it as a table, CSV, or SVG. With requireChain it fails unless
// at least one trace carries the full ingest→wal→ship→follower chain — the
// check the failover smoke gates on.
func runSpans(files []string, csv, svg, requireChain bool, out io.Writer) error {
	var spans []obs.Span
	dropped := 0
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return usageError{fmt.Errorf("spans: %w", err)}
		}
		s, d, err := obs.LoadSpans(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("spans: %s: %w", path, err)
		}
		spans = append(spans, s...)
		dropped += d
	}
	rep := obs.BuildSpanReport(spans, dropped)
	if svg {
		if err := obs.SVGSpanReport(out, rep); err != nil {
			return err
		}
	} else if err := obs.WriteSpanReport(out, rep, csv); err != nil {
		return err
	}
	if requireChain && rep.CompleteChains == 0 {
		return fmt.Errorf("spans: no complete ingest→wal→ship→follower chain across %d traces (%d spans)",
			rep.Traces, rep.Spans)
	}
	return nil
}

// parseIntensities parses the -intensities flag; empty means the experiment
// default.
func parseIntensities(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, usagef("bad intensity %q: %v", part, err)
		}
		if v < 0 || v > 1 {
			return nil, usagef("intensity %v outside [0, 1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, usagef("empty -intensities list")
	}
	return out, nil
}

// dispatchSVG renders the figures that have SVG forms.
func dispatchSVG(name string, cfg experiments.Config, intensities []float64, out io.Writer) error {
	switch name {
	case "chaos":
		points, err := experiments.Chaos(cfg, intensities)
		if err != nil {
			return err
		}
		return experiments.SVGChaos(out, points)
	case "fig2":
		series, err := experiments.Fig2(cfg)
		if err != nil {
			return err
		}
		return experiments.SVGFig2(out, series)
	case "fig3":
		series, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		return experiments.SVGFig3(out, series)
	case "fig5":
		points, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		return experiments.SVGFig5(out, points)
	case "fig6":
		res, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		return experiments.SVGFig6(out, res)
	case "fig7":
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		return experiments.SVGFig7(out, rows)
	case "fig8":
		rows, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		return experiments.SVGFig8(out, rows)
	case "timeline":
		res, err := experiments.Timeline(cfg, singleBench(cfg), workload.InputEval)
		if err != nil {
			return err
		}
		return experiments.SVGTimeline(out, res)
	default:
		return usagef("experiment %q has no SVG form (figures 2, 3, 5, 6, 7, 8, chaos and timeline do)", name)
	}
}

// singleBench picks the benchmark for the experiments that run exactly one
// (describe, timeline): the -bench selection when it names a single
// benchmark, gcc otherwise.
func singleBench(cfg experiments.Config) string {
	if len(cfg.Benchmarks) == 1 {
		return cfg.Benchmarks[0]
	}
	return "gcc"
}

func experimentNames() []string {
	return []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "table3",
		"table4", "fig6", "fig7", "fig8", "fig9", "table5",
		"averaging", "flush", "generality", "policies", "chaos", "sweep-monitor", "sweep-evict",
		"sweep-wait", "sweep-oscillation", "sweep-step", "sweep-threshold",
		"sweep-task", "sweep-slaves", "replay", "tls", "describe", "timeline", "all"}
}

func dispatch(name string, cfg experiments.Config, csv bool, intensities []float64, out io.Writer) error {
	switch name {
	case "chaos":
		points, err := experiments.Chaos(cfg, intensities)
		if err != nil {
			return err
		}
		if err := experiments.WriteChaos(out, points, csv); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return experiments.WriteChaosSummary(out, experiments.ChaosSummary(points), csv)
	case "table1":
		return experiments.WriteTable1(out, cfg, csv)
	case "table2":
		return writeTable2(out, cfg)
	case "fig2":
		series, err := experiments.Fig2(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFig2(out, series, csv)
	case "fig3":
		series, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFig3(out, series, csv)
	case "fig4":
		return writeFig4(out)
	case "fig5":
		points, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFig5(out, points, csv)
	case "table3":
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteTable3(out, rows, csv)
	case "table4":
		points, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteTable4(out, experiments.Table4(points), csv)
	case "fig6":
		res, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFig6(out, res, csv)
	case "fig7":
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFig7(out, rows, csv)
	case "fig8":
		rows, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFig8(out, rows, csv)
	case "fig9":
		res, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFig9(out, res, csv)
	case "table5":
		return writeTable5(out)
	case "averaging":
		rows, err := experiments.ProfileAveraging(cfg, nil)
		if err != nil {
			return err
		}
		return experiments.WriteAveraging(out, rows, csv)
	case "flush":
		rows, err := experiments.FlushPolicy(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFlush(out, rows, csv)
	case "replay":
		rows, err := experiments.Replay(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteReplay(out, rows, csv)
	case "tls":
		rows, err := experiments.TLS(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteTLS(out, rows, csv)
	case "describe":
		rows, spec, err := experiments.Describe(cfg, singleBench(cfg), workload.InputEval)
		if err != nil {
			return err
		}
		return experiments.WriteDescribe(out, spec, rows, csv)
	case "timeline":
		res, err := experiments.Timeline(cfg, singleBench(cfg), workload.InputEval)
		if err != nil {
			return err
		}
		return experiments.WriteTimeline(out, res, csv)
	case "sweep-slaves":
		rows, err := experiments.SlaveSweep(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteSlaveSweep(out, rows, csv)
	case "sweep-task":
		rows, err := experiments.TaskSweep(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteTaskSweep(out, rows, csv)
	case "generality":
		rows, err := experiments.Generality(cfg)
		if err != nil {
			return err
		}
		return experiments.WriteGenerality(out, rows, csv)
	case "policies":
		points, err := experiments.Policies(cfg)
		if err != nil {
			return err
		}
		if err := experiments.WritePolicies(out, points, csv); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return experiments.WritePoliciesSummary(out, experiments.PoliciesSummary(points), csv)
	case "sweep-monitor", "sweep-evict", "sweep-wait", "sweep-oscillation",
		"sweep-step", "sweep-threshold":
		kind := experiments.SweepKind(strings.TrimPrefix(name, "sweep-"))
		points, err := experiments.Sweep(cfg, kind)
		if err != nil {
			return err
		}
		return experiments.WriteSweep(out, points, csv)
	default:
		return usagef("unknown experiment %q", name)
	}
}

// writeTable2 prints the model parameters actually used (Table 2, scaled to
// the experiment regime) next to the paper's values.
func writeTable2(out io.Writer, cfg experiments.Config) error {
	p := cfg.Params()
	d := core.DefaultParams()
	rows := []struct {
		name        string
		used, paper uint64
	}{
		{name: "monitor period (executions)", used: p.MonitorPeriod, paper: d.MonitorPeriod},
		{name: "eviction threshold (+50 misp / -1 corr)", used: uint64(p.EvictThreshold), paper: uint64(d.EvictThreshold)},
		{name: "wait period (executions)", used: p.WaitPeriod, paper: d.WaitPeriod},
		{name: "optimization latency (instructions)", used: p.OptLatency, paper: d.OptLatency},
		{name: "oscillation limit (optimizations)", used: uint64(p.MaxOptimizations), paper: uint64(d.MaxOptimizations)},
	}
	fmt.Fprintf(out, "selection threshold: %.1f%% (paper: %.1f%%)\n",
		p.SelectThreshold*100, d.SelectThreshold*100)
	for _, r := range rows {
		fmt.Fprintf(out, "%-42s %12d (paper: %d)\n", r.name, r.used, r.paper)
	}
	return nil
}

// writeFig4 prints the classification state machine (the paper's Figure 4b).
func writeFig4(out io.Writer) error {
	_, err := fmt.Fprint(out, `Figure 4(b): reactive branch-behavior classifier

            +----------------------+
            |                      v
  [monitor] --(bias >= 99.5%)--> [biased] --(eviction counter full)--+
      |  ^                                                           |
      |  +-----------------------------------------------------------+
      |  ^
      +--(else)--> [unbiased] --(wait period elapses)--+
                       ^--------------------------------+
  (a sixth optimization attempt retires the branch permanently)
`)
	return err
}

// writeTable5 prints the simulated machine parameters (Table 5).
func writeTable5(out io.Writer) error {
	_, err := fmt.Fprint(out, `Table 5: simulated CMP (as implemented in internal/cpu, internal/cache)

             leading core              trailing cores (x8)
pipeline     4-wide, 12-stage          2-wide, 8-stage
window       128 entries               24 entries
L1 cache     64KB 2-way 64B, 3cy       8KB 8-way 64B, 3cy
br. pred.    8Kb gshare, 32-entry RAS, 256-entry indirect (each core)
L2 cache     shared 1MB 8-way 64B, 10-cycle minimum
coherence    10-cycle minimum hop (uncongested)
memory       200-cycle minimum after L2
`)
	return err
}
