package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

func TestRunTable2(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"table2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"selection threshold", "99.5%", "monitor period", "oscillation limit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig4AndTable5(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig4"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "biased") || !strings.Contains(b.String(), "monitor") {
		t.Fatal("fig4 output incomplete")
	}
	b.Reset()
	if err := run([]string{"table5"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gshare") || !strings.Contains(b.String(), "200-cycle") {
		t.Fatal("table5 output incomplete")
	}
}

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "0.02", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "diffmail.pl") {
		t.Fatal("table1 missing paper input names")
	}
}

func TestRunTable3Subset(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "0.05", "-bench", "eon", "table3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eon") {
		t.Fatal("table3 output missing benchmark")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "0.05", "-bench", "eon", "-format", "csv", "table3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bench,touch") {
		t.Fatalf("csv output wrong:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"nonesuch"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{}, &b); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if err := run([]string{"-bench", "nope", "table3"}, &b); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run([]string{"-format", "xml", "table3"}, &b); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunChaos(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "0.05", "-bench", "gzip", "-intensities", "0,0.5", "chaos"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"reactive", "prev-profile-99", "incorrect-delta", "gzip"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := run([]string{"-scale", "0.05", "-bench", "gzip", "-intensities", "0,0.5", "-format", "svg", "chaos"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("chaos SVG output malformed")
	}
}

func TestRunTimeline(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "0.02", "-bench", "gzip", "timeline"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"gzip", "transitions", "trajectory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := run([]string{"-scale", "0.02", "-bench", "gzip", "-format", "csv", "timeline"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "branch,state,from_instr,to_instr") {
		t.Fatalf("timeline csv output wrong:\n%s", b.String())
	}
	b.Reset()
	if err := run([]string{"-scale", "0.02", "-bench", "gzip", "-format", "svg", "timeline"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") || !strings.Contains(b.String(), "</svg>") {
		t.Fatal("timeline SVG output malformed")
	}
}

// TestRunWALTimeline drives the WAL replay mode end to end: write a small
// log the way reactived would, then render its timeline in all three
// formats.
func TestRunWALTimeline(t *testing.T) {
	params := core.DefaultParams().Scaled(10)
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, ParamsHash: server.ParamsHash(params), Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]trace.Event, 0, 400)
	for i := 0; i < 400; i++ {
		events = append(events, trace.Event{Branch: trace.BranchID(1 + i%2), Taken: i%2 == 0, Gap: 9})
	}
	if _, err := l.Append("gzip", events); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := run([]string{"-wal-dir", dir, "timeline"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wal:gzip", "transitions", "trajectory"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("wal timeline output missing %q:\n%s", want, b.String())
		}
	}
	b.Reset()
	if err := run([]string{"-wal-dir", dir, "-wal-program", "gzip", "-format", "csv", "timeline"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "branch,state,from_instr,to_instr") {
		t.Fatalf("wal timeline csv output wrong:\n%s", b.String())
	}
	b.Reset()
	if err := run([]string{"-wal-dir", dir, "-format", "svg", "timeline"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("wal timeline SVG output malformed")
	}

	if err := run([]string{"-wal-dir", dir, "table1"}, &b); exitCode(err) != 2 {
		t.Fatalf("-wal-dir with table1: err %v, want usage error", err)
	}
	if err := run([]string{"-wal-from", "3", "timeline"}, &b); exitCode(err) != 2 {
		t.Fatalf("-wal-from without -wal-dir: err %v, want usage error", err)
	}
	if err := run([]string{"-wal-dir", dir, "-wal-from", "5", "-wal-to", "5", "timeline"}, &b); exitCode(err) != 2 {
		t.Fatalf("empty window: err %v, want usage error", err)
	}
}

func TestRunTimeoutCancels(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-scale", "0.05", "-bench", "gzip", "-timeout", "1ns", "chaos"}, &b)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if exitCode(err) != 1 {
		t.Fatalf("timeout exit code %d, want 1 (experiment failure)", exitCode(err))
	}
	msg := errorMessage(err)
	if !strings.Contains(msg, "-timeout") || !strings.Contains(msg, "deadline") {
		t.Fatalf("timeout message %q does not name -timeout expiry", msg)
	}
	if plain := errorMessage(errors.New("boom")); plain != "boom" {
		t.Fatalf("plain errors must render verbatim, got %q", plain)
	}
}

func TestExitCodeClassification(t *testing.T) {
	var b strings.Builder
	usageCases := [][]string{
		{"nonesuch"},
		{},
		{"-bench", "nope", "table3"},
		{"-format", "xml", "table3"},
		{"-intensities", "2", "chaos"},
		{"-intensities", "x", "chaos"},
		{"-format", "svg", "table3"},
	}
	for _, args := range usageCases {
		err := run(args, &b)
		if err == nil {
			t.Fatalf("args %v accepted", args)
		}
		if exitCode(err) != 2 {
			t.Fatalf("args %v: exit code %d, want 2 (usage): %v", args, exitCode(err), err)
		}
	}
	if exitCode(errors.New("experiment blew up")) != 1 {
		t.Fatal("plain errors must exit 1")
	}
}

func TestRunSVGFormats(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "0.05", "-bench", "eon", "-format", "svg", "fig5"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") || !strings.Contains(b.String(), "</svg>") {
		t.Fatal("fig5 SVG output malformed")
	}
	b.Reset()
	if err := run([]string{"-format", "svg", "table3"}, &b); err == nil {
		t.Fatal("table3 should have no SVG form")
	}
}
